"""Hardware design-space exploration: sweep the machine, not the workload.

Everything before this module scaled the repo along the *workload* axis:
more networks, more dataflows, bigger grids of the paper's two hardware
knobs (PE count, RF size).  The paper's actual argument, however, is a
*trade-off space* -- the energy ranking of the dataflows shifts as the
PE-array geometry, the register-file capacity and the global-buffer
capacity change, and the row-stationary claim is only meaningful under
the equal-storage-area comparison of Section VI-B.  This module searches
that hardware space directly, and it does so as a **streaming
pipeline**: candidates are generated lazily, evaluated in chunks, and
folded into an incrementally maintained Pareto frontier, so memory
scales with ``O(chunk + frontier)`` rather than with the size of the
space.  A million-candidate sweep is a budget question, not a memory
question:

* :class:`DesignSpace` -- a typed description of a hardware sweep: PE
  array geometries (square ``pe_counts`` and/or explicit non-square
  ``array_shapes``) x RF bytes/PE x global-buffer sizes, under one
  workload x dataflows x objective.  Two normalization modes:

  - **free mode** (default): every ``geometry x rf x glb`` combination
    is a candidate; an optional ``area_budget`` (normalized Fig. 7a
    units, see :mod:`repro.arch.area`) filters out points whose storage
    area exceeds it.
  - **equal-area mode** (``equal_area=True``): the global buffer is
    *derived* per point from the Eq. (2) storage-area budget -- the
    paper's comparison methodology -- and points whose RF demand alone
    exceeds the budget are pruned.

  The expansion is lazy -- :meth:`DesignSpace.iter_points` /
  :meth:`DesignSpace.iter_candidates` are generators, with
  :meth:`DesignSpace.points` / :meth:`DesignSpace.candidates` kept as
  small ``tuple(...)`` convenience wrappers -- and sized without
  expansion through :meth:`DesignSpace.count`.  ``sample=N`` restricts
  an exploration to a seeded budget of candidates, drawn either
  uniformly at random or from a low-discrepancy (Halton / van der
  Corput) sequence.

* :func:`explore` / :func:`explore_stream` -- evaluate the candidates
  through the shared evaluation engine's completion-order streaming
  path, in chunks of ``NetworkJob`` cells, so every repeated (dataflow,
  layer, hardware, objective) sub-problem hits the engine's cache
  tiers: a warm re-exploration computes nothing.  Recording sessions
  persist each candidate into the experiment store *as it completes*
  and checkpoint progress under the space's fingerprint, so an
  interrupted exploration resumes from the store (``resume=True``)
  instead of restarting.

* :class:`ParetoFrontier` -- the mutable online reduction: one
  :meth:`~ParetoFrontier.insert` per evaluated candidate, dominance
  short-circuits, dominated rows dropped immediately.

* :class:`ParetoSet` -- the frozen answer: the non-dominated frontier
  over configurable metrics (energy/op x delay/op x storage area by
  default), with the evaluated candidates retained for export when the
  space is small enough to keep (see :data:`KEEP_CANDIDATES_LIMIT`).

The front is a deterministic pure function of the design space:
frontier rows are kept ordered by *expansion index* (ties by insertion
order), so serial, thread-pool, process-pool and chunk-streamed
explorations return bit-identical frontiers regardless of completion
order, and the streamed incremental reduction matches the exhaustive
:meth:`ParetoSet.reduce` exactly (``tests/test_dse.py`` pins this, plus
the frontier of a small fixed space).

Entry points: :meth:`repro.api.Session.explore`, the ``repro dse`` CLI
subcommand, and the ``{"verb": "dse"}`` request of ``repro serve``.
Named spaces register through :func:`repro.registry.register_design_space`::

    from repro.api import Session
    from repro.dse import DesignSpace

    with Session() as session:
        pareto = session.explore(DesignSpace(
            workload="alexnet-conv", dataflows=("RS", "NLR"),
            pe_counts=(128, 256), rf_choices=(256, 512),
            equal_area=True))
        for point in pareto:
            print(point.dataflow, point.num_pes, point.energy_per_op)
"""

from __future__ import annotations

import bisect
import hashlib
import json
import random as _random
import time
from dataclasses import dataclass, field, fields
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.arch.area import storage_area
from repro.arch.hardware import HardwareConfig, square_array_geometry
from repro.arch.storage import (
    BYTES_PER_WORD,
    allocate_storage,
    baseline_storage_area,
)
from repro.energy.model import NetworkEvaluation
from repro.engine.core import NetworkJob
from repro.nn.layer import LayerShape
from repro.registry import (
    dataflow_registry,
    get_dataflow,
    get_network,
    network_registry,
    objective_registry,
    register_design_space,
)

#: Workload label used for spaces built from explicit layer lists.
CUSTOM_WORKLOAD = "custom"

#: Baseline global-buffer bytes per PE used when free mode is given no
#: explicit ``glb_choices`` (the Fig. 10 setup: #PE x 512 B).
BASELINE_GLB_BYTES_PER_PE = 512

#: Metric columns a Pareto front may minimize over.
CANDIDATE_METRICS = (
    "energy_per_op", "delay_per_op", "edp_per_op",
    "dram_reads_per_op", "dram_writes_per_op", "dram_accesses_per_op",
    "area",
)

#: The default Pareto objectives: the paper's three-way trade-off.
DEFAULT_METRICS = ("energy_per_op", "delay_per_op", "area")

#: Candidate-sampling strategies ``DesignSpace.sampler`` accepts.
SAMPLERS = ("random", "halton")

#: Default number of candidates per streamed evaluation chunk.
DEFAULT_CHUNK = 256

#: Explorations at most this large retain every evaluated candidate in
#: the returned :class:`ParetoSet` (the historical behaviour, needed for
#: ``include_dominated`` export); larger spaces keep only the frontier
#: unless ``keep_candidates`` is forced.
KEEP_CANDIDATES_LIMIT = 4096

_EMPTY_SPACE_MESSAGE = (
    "expands to no valid hardware point (every geometry x "
    "storage choice exceeds the area budget)")


class EmptyDesignSpaceError(ValueError):
    """A design space pruned down to zero valid hardware points."""


# ----------------------------------------------------------------------
# Design points: one resolved hardware configuration plus its area.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DesignPoint:
    """One resolved hardware point of a design space.

    Capacities are stored in bytes (the sweep-facing unit); the
    :attr:`hardware` property converts to the 16-bit-word capacities
    :class:`~repro.arch.hardware.HardwareConfig` carries.
    """

    array_h: int
    array_w: int
    rf_bytes_per_pe: int
    buffer_bytes: int

    def __post_init__(self) -> None:
        if self.array_h < 1 or self.array_w < 1:
            raise ValueError(
                f"array geometry must be positive, got "
                f"{self.array_h}x{self.array_w}")
        if self.rf_bytes_per_pe < 0 or self.buffer_bytes < 0:
            raise ValueError("storage capacities cannot be negative")

    @property
    def num_pes(self) -> int:
        """Total PEs of the array geometry."""
        return self.array_h * self.array_w

    @property
    def area(self) -> float:
        """Normalized storage area of this point (Fig. 7a units).

        The sum of every PE's register file plus the global buffer,
        each costed through :func:`repro.arch.area.storage_area`; the
        same quantity Eq. (2) budgets, so free-mode ``area_budget``
        filtering and equal-area derivation are directly comparable.
        """
        return (self.num_pes * storage_area(self.rf_bytes_per_pe)
                + storage_area(self.buffer_bytes))

    @property
    def hardware(self) -> HardwareConfig:
        """The engine-level hardware identity of this point."""
        return HardwareConfig(
            num_pes=self.num_pes, array_h=self.array_h,
            array_w=self.array_w,
            rf_words_per_pe=self.rf_bytes_per_pe // BYTES_PER_WORD,
            buffer_words=self.buffer_bytes // BYTES_PER_WORD)

    def describe(self) -> str:
        """One-line human-readable summary of the point."""
        return (f"{self.array_h}x{self.array_w} PEs, "
                f"{self.rf_bytes_per_pe} B RF/PE, "
                f"{self.buffer_bytes / 1024:.0f} kB buffer "
                f"(area {self.area:.0f})")


def _positive_tuple(values, what: str, minimum: int = 1) -> Tuple[int, ...]:
    """Normalize a scalar/sequence of ints, rejecting strings and zeros."""
    if isinstance(values, int) and not isinstance(values, bool):
        values = (values,)
    if isinstance(values, str):
        # Iterating "256" would silently turn it into the grid (2, 5, 6).
        raise ValueError(
            f"{what} must be a sequence of integers, got {values!r}")
    result = tuple(int(v) for v in values)
    if any(v < minimum for v in result):
        raise ValueError(
            f"{what} must be integers >= {minimum}, got {values!r}")
    return result


def _shape_tuple(values) -> Tuple[Tuple[int, int], ...]:
    """Normalize ``array_shapes`` into ((h, w), ...) pairs."""
    shapes = []
    for entry in values:
        pair = tuple(int(v) for v in entry)
        if len(pair) != 2 or any(v < 1 for v in pair):
            raise ValueError(
                f"array_shapes entries must be (height, width) pairs of "
                f"positive integers, got {entry!r}")
        shapes.append(pair)
    return tuple(shapes)


def _van_der_corput(index: int, base: int = 2) -> float:
    """The van der Corput radical inverse of ``index`` in ``base``.

    The 1-D Halton low-discrepancy sequence: successive indices fill
    ``[0, 1)`` evenly at every prefix length, which is what makes a
    truncated sampling budget cover the candidate space uniformly
    instead of clustering the way a pseudo-random draw can.
    """
    result, denom = 0.0, 1.0
    while index:
        index, remainder = divmod(index, base)
        denom *= base
        result += remainder / denom
    return result


# ----------------------------------------------------------------------
# DesignSpace: the typed sweep description.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DesignSpace:
    """A typed hardware sweep under one workload x dataflows x objective.

    The hardware axes:

    ``pe_counts`` / ``array_shapes``
        PE-array geometries.  ``pe_counts`` entries become the
        most-square factorization (:func:`~repro.arch.hardware.
        square_array_geometry`); ``array_shapes`` names explicit
        ``(height, width)`` pairs, e.g. the chip's 12x14.  At least one
        axis must be non-empty; duplicates collapse.
    ``rf_choices``
        Register-file bytes per PE (0 is legal: the NLR operating point
        has no RF at all).
    ``glb_choices`` / ``equal_area`` / ``area_budget``
        Free mode enumerates ``glb_choices`` global-buffer sizes in
        bytes (``None`` defaults to the Fig. 10 baseline, #PE x 512 B)
        and drops points whose storage area exceeds ``area_budget``
        when one is given.  ``equal_area=True`` instead *derives* the
        buffer from the Eq. (2) budget (``area_budget`` overrides the
        budget itself), reproducing the paper's equal-area comparison;
        explicit ``glb_choices`` are then contradictory and rejected.
    ``sample`` / ``seed`` / ``sampler``
        Budgeted exploration: ``sample=N`` restricts the candidate
        stream to ``N`` of the full dataflow x point expansion, chosen
        deterministically from ``seed``.  ``sampler="random"`` draws
        uniformly; ``sampler="halton"`` uses the base-2 van der Corput
        low-discrepancy sequence (seed-rotated), which spreads a small
        budget evenly across the expansion order.  Sampling selects
        *candidates* (dataflow x point pairs); :meth:`points` and
        :meth:`count` always describe the unsampled point grid.

    ``metrics`` names the Pareto objectives (all minimized); the
    default is the paper's energy/op x delay/op x storage-area
    trade-off.  Validation is eager, like :class:`repro.api.Scenario`:
    unknown names fail at construction with the known menu listed.
    """

    workload: Union[str, Tuple[LayerShape, ...]]
    dataflows: Tuple[str, ...] = ()
    batch: int = 16
    pe_counts: Tuple[int, ...] = ()
    array_shapes: Tuple[Tuple[int, int], ...] = ()
    rf_choices: Tuple[int, ...] = (512,)
    glb_choices: Optional[Tuple[int, ...]] = None
    equal_area: bool = False
    area_budget: Optional[float] = None
    objective: str = "energy"
    metrics: Tuple[str, ...] = DEFAULT_METRICS
    sample: Optional[int] = None
    seed: int = 0
    sampler: str = "random"

    def __post_init__(self) -> None:
        set_ = lambda name, value: object.__setattr__(self, name, value)  # noqa: E731
        if isinstance(self.workload, str):
            if self.workload not in network_registry:
                raise ValueError(
                    f"unknown network {self.workload!r}; known: "
                    f"{sorted(network_registry)}")
            set_("workload", self.workload.lower())
        else:
            layers = tuple(self.workload)
            if not layers or not all(isinstance(l, LayerShape)
                                     for l in layers):
                raise ValueError(
                    "workload must be a registered network name or a "
                    "non-empty sequence of LayerShape objects, got "
                    f"{self.workload!r}")
            set_("workload", layers)
        dataflows = ((self.dataflows,) if isinstance(self.dataflows, str)
                     else tuple(self.dataflows))
        if not dataflows:
            dataflows = tuple(dataflow_registry)
        try:
            set_("dataflows", tuple(dataflow_registry.canonical(n)
                                    for n in dataflows))
        except KeyError as exc:
            raise ValueError(str(exc.args[0])) from None
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        set_("pe_counts", _positive_tuple(self.pe_counts, "pe_counts"))
        set_("array_shapes", _shape_tuple(self.array_shapes))
        if not self.pe_counts and not self.array_shapes:
            raise ValueError(
                "a design space needs at least one PE-array geometry: "
                "set pe_counts and/or array_shapes")
        set_("rf_choices", _positive_tuple(self.rf_choices, "rf_choices",
                                           minimum=0))
        if not self.rf_choices:
            raise ValueError("rf_choices must name at least one RF size")
        if self.equal_area and self.glb_choices is not None:
            raise ValueError(
                "equal_area=True derives the global buffer from the area "
                "budget; explicit glb_choices are contradictory")
        if self.glb_choices is not None:
            glb = _positive_tuple(self.glb_choices, "glb_choices",
                                  minimum=0)
            if not glb:
                raise ValueError(
                    "glb_choices must name at least one buffer size")
            set_("glb_choices", glb)
        if self.area_budget is not None and self.area_budget <= 0:
            raise ValueError(
                f"area_budget must be positive, got {self.area_budget}")
        try:
            set_("objective", objective_registry.canonical(self.objective))
        except KeyError:
            raise ValueError(
                f"unknown objective {self.objective!r}; known: "
                f"{list(objective_registry)}") from None
        metrics = ((self.metrics,) if isinstance(self.metrics, str)
                   else tuple(self.metrics))
        unknown = [m for m in metrics if m not in CANDIDATE_METRICS]
        if unknown or not metrics:
            raise ValueError(
                f"unknown Pareto metric(s) {unknown}; known: "
                f"{list(CANDIDATE_METRICS)}")
        set_("metrics", metrics)
        if self.sample is not None:
            if isinstance(self.sample, bool) or int(self.sample) < 1:
                raise ValueError(
                    f"sample must be a positive integer, got "
                    f"{self.sample!r}")
            set_("sample", int(self.sample))
        set_("seed", int(self.seed))
        sampler = str(self.sampler).lower()
        if sampler not in SAMPLERS:
            raise ValueError(
                f"unknown sampler {self.sampler!r}; known: "
                f"{list(SAMPLERS)}")
        set_("sampler", sampler)

    # ------------------------------------------------------------------

    @property
    def workload_name(self) -> str:
        """The registry name, or ``"custom"`` for explicit layers."""
        return (self.workload if isinstance(self.workload, str)
                else CUSTOM_WORKLOAD)

    def layers(self) -> Tuple[LayerShape, ...]:
        """The layer list every candidate evaluates (at ``batch``)."""
        if isinstance(self.workload, str):
            return tuple(get_network(self.workload)(self.batch))
        return self.workload

    def geometries(self) -> Tuple[Tuple[int, int], ...]:
        """The deduplicated (height, width) array geometries, in order."""
        seen = []
        for num_pes in self.pe_counts:
            shape = square_array_geometry(num_pes)
            if shape not in seen:
                seen.append(shape)
        for shape in self.array_shapes:
            if shape not in seen:
                seen.append(shape)
        return tuple(seen)

    def _budget(self, num_pes: int) -> float:
        """The storage-area budget one geometry is held to."""
        if self.area_budget is not None:
            return self.area_budget
        return baseline_storage_area(num_pes)

    def _expand_points(self) -> Iterator[DesignPoint]:
        """The raw lazy expansion of the hardware axes (may be empty).

        Equal-area mode derives each point's buffer from the budget and
        prunes (geometry, rf) pairs whose RF area alone exceeds it;
        free mode filters enumerated points against ``area_budget``
        when one is set.  The empty-space check lives in callers
        (:meth:`iter_points`), so sizing helpers like :meth:`count` can
        consume this without triggering the error.
        """
        for h, w in self.geometries():
            num_pes = h * w
            for rf in self.rf_choices:
                if self.equal_area:
                    try:
                        allocation = allocate_storage(
                            num_pes, rf, self._budget(num_pes))
                    except ValueError:
                        continue  # RF alone exceeds the area budget
                    yield DesignPoint(
                        array_h=h, array_w=w, rf_bytes_per_pe=rf,
                        buffer_bytes=allocation.buffer_words
                        * BYTES_PER_WORD)
                    continue
                glb_options = (self.glb_choices
                               if self.glb_choices is not None
                               else (num_pes * BASELINE_GLB_BYTES_PER_PE,))
                for glb in glb_options:
                    point = DesignPoint(array_h=h, array_w=w,
                                        rf_bytes_per_pe=rf,
                                        buffer_bytes=glb)
                    if (self.area_budget is not None
                            and point.area > self.area_budget):
                        continue  # outside the fixed-area envelope
                    yield point

    def iter_points(self) -> Iterator[DesignPoint]:
        """Lazily yield the concrete design points, one at a time.

        Memory stays O(1) in the space size: points are generated on
        demand, never materialized.  Raises
        :class:`EmptyDesignSpaceError` -- lazily, at exhaustion --
        when every combination was pruned.
        """
        empty = True
        for point in self._expand_points():
            empty = False
            yield point
        if empty:
            raise EmptyDesignSpaceError(_EMPTY_SPACE_MESSAGE)

    def points(self) -> Tuple[DesignPoint, ...]:
        """The design points as a tuple (:meth:`iter_points` collected).

        Convenience wrapper for small spaces and tests; streaming
        consumers should iterate :meth:`iter_points` instead.  Raises
        :class:`EmptyDesignSpaceError` when everything was pruned.
        """
        return tuple(self.iter_points())

    def count(self) -> int:
        """The number of design points, without materializing any.

        Free mode with no ``area_budget`` is closed-form:
        ``geometries x rf_choices x glb_choices``.  The pruned modes
        (equal-area, explicit ``area_budget``) must test each
        (geometry, rf[, glb]) combination, but still in O(1) memory --
        no :class:`DesignPoint` tuple is ever built.  Returns 0 for a
        fully pruned space (where :meth:`iter_points` would raise).
        """
        if not self.equal_area and self.area_budget is None:
            per_geometry = (len(self.glb_choices)
                            if self.glb_choices is not None else 1)
            return len(self.geometries()) * len(self.rf_choices) \
                * per_geometry
        total = 0
        for _ in self._expand_points():
            total += 1
        return total

    def candidate_count(self) -> int:
        """The number of candidates :meth:`iter_candidates` will yield.

        The full expansion is ``count() x len(dataflows)``; with
        ``sample=N`` set, the stream is capped at ``min(N, full)``.
        """
        full = self.count() * len(self.dataflows)
        if self.sample is not None:
            return min(self.sample, full)
        return full

    def _selected_indices(self) -> Optional[frozenset]:
        """The sampled subset of expansion indices (None = take all).

        Indices number the full dataflow-major expansion
        (``count() x len(dataflows)`` slots).  ``random`` draws without
        replacement from ``random.Random(seed)``; ``halton`` maps the
        seed-rotated van der Corput sequence onto the index range,
        deduplicating until the budget is met.  Both are pure functions
        of (space, seed): the same seed always selects the same set.
        """
        if self.sample is None:
            return None
        total = self.count() * len(self.dataflows)
        if self.sample >= total:
            return None
        if self.sampler == "random":
            return frozenset(
                _random.Random(self.seed).sample(range(total), self.sample))
        # Halton: rotate by the golden-ratio multiple of the seed so
        # different seeds walk different (still low-discrepancy) orbits.
        rotation = (self.seed * 0.6180339887498949) % 1.0
        chosen: set = set()
        index = 1
        while len(chosen) < self.sample:
            value = (_van_der_corput(index) + rotation) % 1.0
            chosen.add(min(int(value * total), total - 1))
            index += 1
        return frozenset(chosen)

    def iter_candidates_indexed(
            self) -> Iterator[Tuple[int, str, DesignPoint]]:
        """Lazily yield ``(expansion index, dataflow, point)`` triples.

        The index numbers the *full* dataflow-major expansion (dataflow
        outer, valid points inner), independent of sampling -- it is
        the stable candidate identity that checkpoint/resume and the
        frontier's deterministic ordering key on.  With ``sample`` set,
        only the selected indices are yielded (still in expansion
        order).  Raises :class:`EmptyDesignSpaceError` at exhaustion
        when nothing survives.
        """
        selected = self._selected_indices()
        index = 0
        yielded = False
        for dataflow in self.dataflows:
            for point in self._expand_points():
                if selected is None or index in selected:
                    yielded = True
                    yield index, dataflow, point
                index += 1
        if not yielded:
            raise EmptyDesignSpaceError(_EMPTY_SPACE_MESSAGE)

    def iter_candidates(self) -> Iterator[Tuple[str, DesignPoint]]:
        """Lazily yield the (dataflow, point) pairs to evaluate."""
        for _index, dataflow, point in self.iter_candidates_indexed():
            yield dataflow, point

    def candidates(self) -> Tuple[Tuple[str, DesignPoint], ...]:
        """The (dataflow, point) pairs as a tuple, in expansion order.

        Convenience wrapper over :meth:`iter_candidates` for small
        spaces and tests; sampling (when set) applies here too.
        """
        return tuple(self.iter_candidates())

    def describe_dict(self) -> Dict:
        """The canonical JSON-safe description of this space.

        Everything that determines the candidate stream -- workload,
        dataflows, resolved geometries, storage axes, mode, objective,
        metrics and the sampling budget -- in plain types.  This is
        what :meth:`fingerprint` hashes, so two spaces describing the
        same exploration fingerprint identically.
        """
        workload = (self.workload if isinstance(self.workload, str)
                    else [repr(layer) for layer in self.workload])
        return {
            "workload": workload,
            "dataflows": list(self.dataflows),
            "batch": self.batch,
            "geometries": [list(g) for g in self.geometries()],
            "rf_choices": list(self.rf_choices),
            "glb_choices": (None if self.glb_choices is None
                            else list(self.glb_choices)),
            "equal_area": self.equal_area,
            "area_budget": self.area_budget,
            "objective": self.objective,
            "metrics": list(self.metrics),
            "sample": self.sample,
            "seed": self.seed,
            "sampler": self.sampler,
        }

    def fingerprint(self) -> str:
        """A stable hex digest identifying this exact exploration.

        sha256 over the sorted-key JSON of :meth:`describe_dict`; the
        experiment store keys exploration checkpoints on it, so
        ``resume=True`` only ever resumes a byte-compatible space.
        """
        payload = json.dumps(self.describe_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Candidate rows and the Pareto reduction.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DseCandidate:
    """One evaluated (dataflow, design point) row of an exploration.

    The scalar fields round-trip through JSON; ``evaluation`` keeps the
    full :class:`~repro.energy.model.NetworkEvaluation` for in-process
    consumers and is dropped -- not compared -- on serialization.
    ``index`` is the candidate's position in the space's full expansion
    (``-1`` for hand-built rows); it is excluded from equality but is
    the deterministic ordering key of streamed frontiers and the
    identity checkpoint/resume uses.
    """

    workload: str
    dataflow: str
    batch: int
    objective: str
    array_h: int
    array_w: int
    num_pes: int
    rf_bytes_per_pe: int
    buffer_bytes: int
    area: float
    feasible: bool
    energy_per_op: float = float("nan")
    delay_per_op: float = float("nan")
    edp_per_op: float = float("nan")
    dram_reads_per_op: float = float("nan")
    dram_writes_per_op: float = float("nan")
    dram_accesses_per_op: float = float("nan")
    index: int = field(default=-1, compare=False)
    evaluation: Optional[NetworkEvaluation] = field(
        default=None, compare=False, repr=False)

    @classmethod
    def from_evaluation(cls, space: DesignSpace, dataflow: str,
                        point: DesignPoint,
                        evaluation: NetworkEvaluation,
                        index: int = -1) -> "DseCandidate":
        """Fold one candidate's engine answer into a row."""
        common = dict(
            workload=space.workload_name, dataflow=dataflow,
            batch=space.batch, objective=space.objective,
            array_h=point.array_h, array_w=point.array_w,
            num_pes=point.num_pes,
            rf_bytes_per_pe=point.rf_bytes_per_pe,
            buffer_bytes=point.buffer_bytes, area=point.area,
            index=index, evaluation=evaluation)
        if not evaluation.feasible:
            return cls(feasible=False, **common)
        return cls(
            feasible=True,
            energy_per_op=evaluation.energy_per_op,
            delay_per_op=evaluation.delay_per_op,
            edp_per_op=evaluation.edp_per_op,
            dram_reads_per_op=evaluation.dram_reads_per_op,
            dram_writes_per_op=evaluation.dram_writes_per_op,
            dram_accesses_per_op=evaluation.dram_accesses_per_op,
            **common)

    def to_dict(self) -> Dict:
        """A JSON-safe dict; metric columns only when feasible."""
        data: Dict = {
            "workload": self.workload, "dataflow": self.dataflow,
            "batch": self.batch, "objective": self.objective,
            "array_h": self.array_h, "array_w": self.array_w,
            "num_pes": self.num_pes,
            "rf_bytes_per_pe": self.rf_bytes_per_pe,
            "buffer_bytes": self.buffer_bytes, "area": self.area,
            "feasible": self.feasible, "index": self.index,
        }
        if self.feasible:
            data.update({name: getattr(self, name)
                         for name in CANDIDATE_METRICS if name != "area"})
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "DseCandidate":
        """Rebuild a row from :meth:`to_dict` output (sans evaluation)."""
        known = {f.name for f in fields(cls)} - {"evaluation"}
        payload = {k: v for k, v in data.items() if k != "on_front"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown candidate field(s) {sorted(unknown)}; "
                f"known: {sorted(known)}")
        return cls(**payload)


def dominates(a: DseCandidate, b: DseCandidate,
              metrics: Sequence[str]) -> bool:
    """True when ``a`` Pareto-dominates ``b``: no worse on every metric
    and strictly better on at least one (all metrics are minimized)."""
    strictly_better = False
    for name in metrics:
        va, vb = getattr(a, name), getattr(b, name)
        if va > vb:
            return False
        if va < vb:
            strictly_better = True
    return strictly_better


def pareto_front(candidates: Sequence[DseCandidate],
                 metrics: Sequence[str] = DEFAULT_METRICS
                 ) -> Tuple[DseCandidate, ...]:
    """The non-dominated subset of ``candidates``, in input order.

    Infeasible rows never reach the front; rows tied on every metric
    are mutually non-dominating and all survive, **in input order** --
    the documented tie-break.  For rows produced by an exploration the
    input order is the expansion-index order, so this reference
    reduction and the incremental :class:`ParetoFrontier` (which sorts
    by expansion index explicitly) agree bit-for-bit regardless of the
    completion order a parallel run delivered candidates in.
    """
    feasible = [c for c in candidates if c.feasible]
    return tuple(
        c for c in feasible
        if not any(dominates(other, c, metrics) for other in feasible))


class ParetoFrontier:
    """A mutable Pareto frontier maintained online, one insert at a time.

    The streaming complement of :func:`pareto_front`: feed every
    evaluated candidate to :meth:`insert` and the frontier is always
    current -- dominated arrivals are dropped immediately (dominance
    short-circuits on the first dominating member) and arrivals that
    dominate existing members evict them on the spot, so live memory is
    bounded by the frontier, not the space.

    Ordering is deterministic and completion-order independent: the
    frontier is kept sorted by each candidate's expansion ``index``
    (ties -- e.g. hand-built rows with the default ``-1`` -- by
    insertion order), so serial, parallel and chunk-streamed runs of
    the same space produce bit-identical frontiers, and
    :meth:`ParetoSet.best` tie-breaking (earliest frontier entry wins)
    is stable too.

    ``keep_candidates=True`` additionally retains every inserted row
    for :attr:`ParetoSet.candidates` export; leave it off for large
    spaces where only the frontier should stay live.
    """

    def __init__(self, metrics: Sequence[str] = DEFAULT_METRICS,
                 keep_candidates: bool = True) -> None:
        self.metrics = tuple(metrics)
        self.keep_candidates = keep_candidates
        self._front: List[DseCandidate] = []
        self._keys: List[int] = []
        self._candidates: List[DseCandidate] = []
        self.evaluated = 0
        self.feasible_evaluated = 0

    def insert(self, candidate: DseCandidate) -> bool:
        """Offer one evaluated candidate; True when it joins the front.

        Infeasible rows are counted (and retained when
        ``keep_candidates``) but never join.  A row dominated by any
        current member is rejected without further comparisons; an
        accepted row first evicts every member it dominates, then takes
        its expansion-index-sorted position.
        """
        self.evaluated += 1
        if candidate.feasible:
            self.feasible_evaluated += 1
        if self.keep_candidates:
            self._candidates.append(candidate)
        if not candidate.feasible:
            return False
        for member in self._front:
            if dominates(member, candidate, self.metrics):
                return False  # short-circuit: dropped immediately
        if any(dominates(candidate, member, self.metrics)
               for member in self._front):
            survivors = [(key, member) for key, member
                         in zip(self._keys, self._front)
                         if not dominates(candidate, member, self.metrics)]
            self._keys = [key for key, _ in survivors]
            self._front = [member for _, member in survivors]
        position = bisect.bisect_right(self._keys, candidate.index)
        self._keys.insert(position, candidate.index)
        self._front.insert(position, candidate)
        return True

    @property
    def frontier(self) -> Tuple[DseCandidate, ...]:
        """The current non-dominated rows, expansion-index ordered."""
        return tuple(self._front)

    def __len__(self) -> int:
        return len(self._front)

    def __iter__(self) -> Iterator[DseCandidate]:
        return iter(self._front)

    def result(self) -> "ParetoSet":
        """Freeze the current state into a :class:`ParetoSet`.

        Retained candidates come back sorted by expansion index (a
        stable sort, so default-index rows keep insertion order); when
        candidates were not kept, :attr:`ParetoSet.candidates` is the
        frontier itself and the evaluated totals live in
        :attr:`ParetoSet.evaluated`.
        """
        if self.keep_candidates:
            candidates = tuple(sorted(self._candidates,
                                      key=lambda c: c.index))
        else:
            candidates = self.frontier
        return ParetoSet(candidates=candidates, metrics=self.metrics,
                         frontier=self.frontier,
                         evaluated=self.evaluated,
                         feasible_evaluated=self.feasible_evaluated)


@dataclass(frozen=True)
class ParetoSet:
    """An exploration's answer: the Pareto frontier plus its context.

    Iterating (and ``len``) covers the frontier; :attr:`candidates`
    retains the evaluated rows for export and audit (all of them for
    spaces up to :data:`KEEP_CANDIDATES_LIMIT`, only the frontier for
    larger streamed runs -- see :attr:`num_evaluated` for the true
    totals), and :attr:`dominated` is the difference.
    """

    candidates: Tuple[DseCandidate, ...]
    metrics: Tuple[str, ...]
    frontier: Tuple[DseCandidate, ...]
    evaluated: Optional[int] = None
    feasible_evaluated: Optional[int] = None

    @classmethod
    def reduce(cls, candidates: Sequence[DseCandidate],
               metrics: Sequence[str] = DEFAULT_METRICS) -> "ParetoSet":
        """Reduce evaluated candidates to their non-dominated frontier.

        Implemented as one :meth:`ParetoFrontier.insert` per candidate
        -- the exhaustive and the streamed reductions are literally the
        same code, which is what makes their bit-identity a structural
        property rather than a test-enforced coincidence.  The input
        rows are retained as given (no reordering).
        """
        candidates = tuple(candidates)
        frontier = ParetoFrontier(metrics, keep_candidates=False)
        for candidate in candidates:
            frontier.insert(candidate)
        return cls(candidates=candidates, metrics=tuple(metrics),
                   frontier=frontier.frontier,
                   evaluated=frontier.evaluated,
                   feasible_evaluated=frontier.feasible_evaluated)

    def __iter__(self) -> Iterator[DseCandidate]:
        return iter(self.frontier)

    def __len__(self) -> int:
        return len(self.frontier)

    @property
    def num_evaluated(self) -> int:
        """Candidates evaluated, even when not all were retained."""
        if self.evaluated is not None:
            return self.evaluated
        return len(self.candidates)

    @property
    def num_feasible(self) -> int:
        """Feasible candidates evaluated (retained or not)."""
        if self.feasible_evaluated is not None:
            return self.feasible_evaluated
        return len(self.feasible_candidates)

    @property
    def dominated(self) -> Tuple[DseCandidate, ...]:
        """Retained feasible candidates beaten by some frontier point."""
        on_front = set(map(id, self.frontier))
        return tuple(c for c in self.candidates
                     if c.feasible and id(c) not in on_front)

    @property
    def feasible_candidates(self) -> Tuple[DseCandidate, ...]:
        """Every retained candidate with at least one valid mapping."""
        return tuple(c for c in self.candidates if c.feasible)

    def best(self, metric: str = "energy_per_op"
             ) -> Optional[DseCandidate]:
        """The frontier point minimizing one metric (None when empty).

        Deterministic on ties: ``min`` keeps the first minimal element
        and the frontier is ordered by expansion index, so equal-metric
        rows resolve to the lowest expansion index -- streamed
        completion order cannot change the answer.
        """
        if not self.frontier:
            return None
        return min(self.frontier, key=lambda c: getattr(c, metric))

    # -- serialization --------------------------------------------------

    def to_dicts(self, include_dominated: bool = False) -> List[Dict]:
        """JSON-safe rows tagged with ``on_front`` membership."""
        on_front = set(map(id, self.frontier))
        rows = (self.candidates if include_dominated else self.frontier)
        return [dict(row.to_dict(), on_front=id(row) in on_front)
                for row in rows]

    def to_json(self, indent: Optional[int] = None,
                include_dominated: bool = False) -> str:
        """The :meth:`to_dicts` rows as a JSON document."""
        return json.dumps(self.to_dicts(include_dominated), indent=indent)

    def to_table(self, title: Optional[str] = None,
                 rows: Optional[Sequence[DseCandidate]] = None) -> str:
        """Render candidate rows (default: the frontier) as a table."""
        from repro.analysis.report import format_table  # lazy: avoids cycle

        table = []
        for c in (self.frontier if rows is None else rows):
            metrics = ([f"{c.energy_per_op:.3f}", f"{c.delay_per_op:.5f}",
                        f"{c.edp_per_op:.5f}"] if c.feasible
                       else ["infeasible", "-", "-"])
            table.append([
                c.dataflow, f"{c.array_h}x{c.array_w}",
                f"{c.rf_bytes_per_pe} B",
                f"{c.buffer_bytes / 1024:.0f} kB", f"{c.area:.0f}",
                *metrics])
        return format_table(
            ["dataflow", "array", "RF/PE", "buffer", "area", "energy/op",
             "delay/op", "EDP/op"], table, title=title)


# ----------------------------------------------------------------------
# Exploration: the engine-backed streaming evaluation of a whole space.
# ----------------------------------------------------------------------


def explore_stream(space: DesignSpace, *, session=None,
                   parallel: Optional[bool] = None,
                   chunk: Optional[int] = None,
                   resume: bool = False,
                   keep_candidates: Optional[bool] = None
                   ) -> Iterator[Tuple[str, object]]:
    """Stream an exploration: candidates, progress, then the result.

    The streaming spine of the DSE path.  Candidates are drawn lazily
    from :meth:`DesignSpace.iter_candidates_indexed` in chunks of
    ``chunk`` (default :data:`DEFAULT_CHUNK`), each chunk evaluated
    through the engine's completion-order streaming path
    (``evaluate_networks_stream``), and every finished row folded into
    an incremental :class:`ParetoFrontier` -- so at most
    ``O(chunk + frontier)`` candidates are ever live, regardless of the
    space size.

    Yields ``(kind, payload)`` events, in order:

    - ``("candidate", DseCandidate)`` per evaluated candidate, in
      completion order within each chunk;
    - ``("progress", dict)`` after each chunk, with ``done`` /
      ``total`` / ``frontier`` / ``elapsed_s``;
    - ``("result", ParetoSet)`` exactly once, last.

    Recording sessions persist each chunk's rows into the experiment
    store as they complete (tagged with the space fingerprint and
    expansion index) and checkpoint progress after every chunk;
    ``resume=True`` then rebuilds the frontier from the store's rows
    for this space and skips their indices -- an interrupted
    exploration continues instead of restarting (requires a recording
    session; raises ``ValueError`` otherwise).

    ``keep_candidates`` controls whether every evaluated row is
    retained in the returned :class:`ParetoSet` (``None`` keeps them
    for spaces up to :data:`KEEP_CANDIDATES_LIMIT` candidates).  Raises
    :class:`EmptyDesignSpaceError` before any evaluation when the space
    prunes to nothing.
    """
    if session is None:
        from repro.api import default_session  # lazy: api imports dse
        session = default_session()
    chunk = DEFAULT_CHUNK if chunk is None else int(chunk)
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    total = space.candidate_count()
    if total == 0:
        raise EmptyDesignSpaceError(_EMPTY_SPACE_MESSAGE)
    if keep_candidates is None:
        keep_candidates = total <= KEEP_CANDIDATES_LIMIT
    fingerprint = space.fingerprint()
    frontier = ParetoFrontier(space.metrics,
                              keep_candidates=keep_candidates)
    done_indices: frozenset = frozenset()
    if resume:
        resumer = getattr(session, "resume_exploration", None)
        if resumer is None:
            raise ValueError(
                "resume=True needs a recording session backed by an "
                "experiment store")
        previous = resumer(fingerprint)
        for row in previous:
            frontier.insert(row)
        done_indices = frozenset(row.index for row in previous)
    layers = space.layers()
    recorder = getattr(session, "record_dse_candidates", None)
    checkpoint = getattr(session, "checkpoint_exploration", None)
    if checkpoint is not None:
        checkpoint(fingerprint, space, total=total,
                   done=frontier.evaluated)
    started = time.perf_counter()

    def batches() -> Iterator[List[Tuple[int, str, DesignPoint]]]:
        """Chunk the candidate stream, skipping already-done indices."""
        batch: List[Tuple[int, str, DesignPoint]] = []
        for item in space.iter_candidates_indexed():
            if item[0] in done_indices:
                continue
            batch.append(item)
            if len(batch) >= chunk:
                yield batch
                batch = []
        if batch:
            yield batch

    for batch in batches():
        jobs = [NetworkJob(get_dataflow(dataflow), layers, point.hardware,
                           space.objective)
                for _index, dataflow, point in batch]
        rows: List[DseCandidate] = []
        for job_index, evaluation in session.engine.evaluate_networks_stream(
                jobs, parallel=parallel):
            index, dataflow, point = batch[job_index]
            row = DseCandidate.from_evaluation(space, dataflow, point,
                                               evaluation, index=index)
            frontier.insert(row)
            rows.append(row)
            yield "candidate", row
        if recorder is not None:
            # Recording sessions persist every evaluated candidate (not
            # just the frontier) into the experiment store's cells table.
            recorder(rows, space_fp=fingerprint)
        if checkpoint is not None:
            checkpoint(fingerprint, space, total=total,
                       done=frontier.evaluated)
        yield "progress", {
            "done": frontier.evaluated,
            "total": total,
            "frontier": len(frontier),
            "elapsed_s": time.perf_counter() - started,
        }
    yield "result", frontier.result()


def explore(space: DesignSpace, *, session=None,
            parallel: Optional[bool] = None,
            chunk: Optional[int] = None,
            resume: bool = False,
            progress: Optional[Callable[[Dict], None]] = None,
            keep_candidates: Optional[bool] = None) -> ParetoSet:
    """Evaluate every candidate of ``space`` and reduce to a Pareto set.

    Drives :func:`explore_stream` to completion: candidates stream
    through the engine in chunks, the frontier is maintained
    incrementally, and the final :class:`ParetoSet` is returned.
    Because each chunk is one deduplicated engine batch, any (dataflow,
    layer, hardware, objective) sub-problem seen before -- in this
    exploration, a previous one, or any other driver sharing the
    session -- is answered from the cache tiers instead of re-running
    the mapping search.

    ``session`` defaults to :func:`repro.api.default_session` (the
    process-wide shared engine); ``parallel`` overrides the session's
    pool policy for this call only; ``progress`` is called with each
    progress event dict (``done``/``total``/``frontier``/
    ``elapsed_s``); ``chunk``, ``resume`` and ``keep_candidates`` are
    forwarded to :func:`explore_stream`.  Results are bit-identical
    across the serial, parallel and streamed paths.
    """
    result: Optional[ParetoSet] = None
    for kind, payload in explore_stream(
            space, session=session, parallel=parallel, chunk=chunk,
            resume=resume, keep_candidates=keep_candidates):
        if kind == "progress" and progress is not None:
            progress(payload)
        elif kind == "result":
            result = payload
    assert result is not None  # explore_stream always yields a result
    return result


# ----------------------------------------------------------------------
# Built-in named design spaces (the registry's seed entries).
# ----------------------------------------------------------------------


@register_design_space("equal-area-grid")
def equal_area_grid() -> DesignSpace:
    """The Section VI-B methodology as a ready-made space: every
    dataflow on AlexNet CONV, PE counts x RF sizes under the Eq. (2)
    equal-area budget (the buffer is derived, not enumerated)."""
    return DesignSpace(workload="alexnet-conv", equal_area=True,
                       pe_counts=(128, 256, 512),
                       rf_choices=(128, 256, 512, 1024))


@register_design_space("chip-neighborhood")
def chip_neighborhood() -> DesignSpace:
    """Free-mode sweep around the fabricated chip's operating point:
    non-square geometries near 12x14, RF and buffer sizes bracketing
    the 512 B / 108 kB silicon (Fig. 4)."""
    return DesignSpace(workload="alexnet-conv", batch=1,
                       dataflows=("RS",),
                       array_shapes=((10, 14), (12, 14), (14, 14)),
                       rf_choices=(256, 512),
                       glb_choices=(64 * 1024, 108 * 1024))
