"""Hardware design-space exploration: sweep the machine, not the workload.

Everything before this module scaled the repo along the *workload* axis:
more networks, more dataflows, bigger grids of the paper's two hardware
knobs (PE count, RF size).  The paper's actual argument, however, is a
*trade-off space* -- the energy ranking of the dataflows shifts as the
PE-array geometry, the register-file capacity and the global-buffer
capacity change, and the row-stationary claim is only meaningful under
the equal-storage-area comparison of Section VI-B.  This module searches
that hardware space directly:

* :class:`DesignSpace` -- a typed description of a hardware sweep: PE
  array geometries (square ``pe_counts`` and/or explicit non-square
  ``array_shapes``) x RF bytes/PE x global-buffer sizes, under one
  workload x dataflows x objective.  Two normalization modes:

  - **free mode** (default): every ``geometry x rf x glb`` combination
    is a candidate; an optional ``area_budget`` (normalized Fig. 7a
    units, see :mod:`repro.arch.area`) filters out points whose storage
    area exceeds it.
  - **equal-area mode** (``equal_area=True``): the global buffer is
    *derived* per point from the Eq. (2) storage-area budget -- the
    paper's comparison methodology -- and points whose RF demand alone
    exceeds the budget are pruned.

* :func:`explore` -- evaluate every (dataflow, design point) candidate
  through the shared evaluation engine.  Candidates are expressed as
  :class:`~repro.engine.core.NetworkJob` cells, so the whole space fans
  out across the session's worker pool at layer granularity and every
  repeated (dataflow, layer, hardware, objective) sub-problem hits the
  engine's cache tiers: a warm re-exploration computes nothing.

* :class:`ParetoSet` -- the reduced answer: the non-dominated frontier
  over configurable metrics (energy/op x delay/op x storage area by
  default), with every evaluated candidate retained for export.

The front is a deterministic pure function of the design space: serial,
thread-pool and process-pool explorations return bit-identical
candidates in the same order (``tests/test_dse.py`` pins this, plus the
frontier of a small fixed space).

Entry points: :meth:`repro.api.Session.explore`, the ``repro dse`` CLI
subcommand, and the ``{"verb": "dse"}`` request of ``repro serve``.
Named spaces register through :func:`repro.registry.register_design_space`::

    from repro.api import Session
    from repro.dse import DesignSpace

    with Session() as session:
        pareto = session.explore(DesignSpace(
            workload="alexnet-conv", dataflows=("RS", "NLR"),
            pe_counts=(128, 256), rf_choices=(256, 512),
            equal_area=True))
        for point in pareto:
            print(point.dataflow, point.num_pes, point.energy_per_op)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.arch.area import storage_area
from repro.arch.hardware import HardwareConfig, square_array_geometry
from repro.arch.storage import (
    BYTES_PER_WORD,
    allocate_storage,
    baseline_storage_area,
)
from repro.energy.model import NetworkEvaluation
from repro.engine.core import NetworkJob
from repro.nn.layer import LayerShape
from repro.registry import (
    dataflow_registry,
    get_dataflow,
    get_network,
    network_registry,
    objective_registry,
    register_design_space,
)

#: Workload label used for spaces built from explicit layer lists.
CUSTOM_WORKLOAD = "custom"

#: Baseline global-buffer bytes per PE used when free mode is given no
#: explicit ``glb_choices`` (the Fig. 10 setup: #PE x 512 B).
BASELINE_GLB_BYTES_PER_PE = 512

#: Metric columns a Pareto front may minimize over.
CANDIDATE_METRICS = (
    "energy_per_op", "delay_per_op", "edp_per_op",
    "dram_reads_per_op", "dram_writes_per_op", "dram_accesses_per_op",
    "area",
)

#: The default Pareto objectives: the paper's three-way trade-off.
DEFAULT_METRICS = ("energy_per_op", "delay_per_op", "area")


class EmptyDesignSpaceError(ValueError):
    """A design space pruned down to zero valid hardware points."""


# ----------------------------------------------------------------------
# Design points: one resolved hardware configuration plus its area.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DesignPoint:
    """One resolved hardware point of a design space.

    Capacities are stored in bytes (the sweep-facing unit); the
    :attr:`hardware` property converts to the 16-bit-word capacities
    :class:`~repro.arch.hardware.HardwareConfig` carries.
    """

    array_h: int
    array_w: int
    rf_bytes_per_pe: int
    buffer_bytes: int

    def __post_init__(self) -> None:
        if self.array_h < 1 or self.array_w < 1:
            raise ValueError(
                f"array geometry must be positive, got "
                f"{self.array_h}x{self.array_w}")
        if self.rf_bytes_per_pe < 0 or self.buffer_bytes < 0:
            raise ValueError("storage capacities cannot be negative")

    @property
    def num_pes(self) -> int:
        """Total PEs of the array geometry."""
        return self.array_h * self.array_w

    @property
    def area(self) -> float:
        """Normalized storage area of this point (Fig. 7a units).

        The sum of every PE's register file plus the global buffer,
        each costed through :func:`repro.arch.area.storage_area`; the
        same quantity Eq. (2) budgets, so free-mode ``area_budget``
        filtering and equal-area derivation are directly comparable.
        """
        return (self.num_pes * storage_area(self.rf_bytes_per_pe)
                + storage_area(self.buffer_bytes))

    @property
    def hardware(self) -> HardwareConfig:
        """The engine-level hardware identity of this point."""
        return HardwareConfig(
            num_pes=self.num_pes, array_h=self.array_h,
            array_w=self.array_w,
            rf_words_per_pe=self.rf_bytes_per_pe // BYTES_PER_WORD,
            buffer_words=self.buffer_bytes // BYTES_PER_WORD)

    def describe(self) -> str:
        """One-line human-readable summary of the point."""
        return (f"{self.array_h}x{self.array_w} PEs, "
                f"{self.rf_bytes_per_pe} B RF/PE, "
                f"{self.buffer_bytes / 1024:.0f} kB buffer "
                f"(area {self.area:.0f})")


def _positive_tuple(values, what: str, minimum: int = 1) -> Tuple[int, ...]:
    """Normalize a scalar/sequence of ints, rejecting strings and zeros."""
    if isinstance(values, int) and not isinstance(values, bool):
        values = (values,)
    if isinstance(values, str):
        # Iterating "256" would silently turn it into the grid (2, 5, 6).
        raise ValueError(
            f"{what} must be a sequence of integers, got {values!r}")
    result = tuple(int(v) for v in values)
    if any(v < minimum for v in result):
        raise ValueError(
            f"{what} must be integers >= {minimum}, got {values!r}")
    return result


def _shape_tuple(values) -> Tuple[Tuple[int, int], ...]:
    """Normalize ``array_shapes`` into ((h, w), ...) pairs."""
    shapes = []
    for entry in values:
        pair = tuple(int(v) for v in entry)
        if len(pair) != 2 or any(v < 1 for v in pair):
            raise ValueError(
                f"array_shapes entries must be (height, width) pairs of "
                f"positive integers, got {entry!r}")
        shapes.append(pair)
    return tuple(shapes)


# ----------------------------------------------------------------------
# DesignSpace: the typed sweep description.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DesignSpace:
    """A typed hardware sweep under one workload x dataflows x objective.

    The hardware axes:

    ``pe_counts`` / ``array_shapes``
        PE-array geometries.  ``pe_counts`` entries become the
        most-square factorization (:func:`~repro.arch.hardware.
        square_array_geometry`); ``array_shapes`` names explicit
        ``(height, width)`` pairs, e.g. the chip's 12x14.  At least one
        axis must be non-empty; duplicates collapse.
    ``rf_choices``
        Register-file bytes per PE (0 is legal: the NLR operating point
        has no RF at all).
    ``glb_choices`` / ``equal_area`` / ``area_budget``
        Free mode enumerates ``glb_choices`` global-buffer sizes in
        bytes (``None`` defaults to the Fig. 10 baseline, #PE x 512 B)
        and drops points whose storage area exceeds ``area_budget``
        when one is given.  ``equal_area=True`` instead *derives* the
        buffer from the Eq. (2) budget (``area_budget`` overrides the
        budget itself), reproducing the paper's equal-area comparison;
        explicit ``glb_choices`` are then contradictory and rejected.

    ``metrics`` names the Pareto objectives (all minimized); the
    default is the paper's energy/op x delay/op x storage-area
    trade-off.  Validation is eager, like :class:`repro.api.Scenario`:
    unknown names fail at construction with the known menu listed.
    """

    workload: Union[str, Tuple[LayerShape, ...]]
    dataflows: Tuple[str, ...] = ()
    batch: int = 16
    pe_counts: Tuple[int, ...] = ()
    array_shapes: Tuple[Tuple[int, int], ...] = ()
    rf_choices: Tuple[int, ...] = (512,)
    glb_choices: Optional[Tuple[int, ...]] = None
    equal_area: bool = False
    area_budget: Optional[float] = None
    objective: str = "energy"
    metrics: Tuple[str, ...] = DEFAULT_METRICS

    def __post_init__(self) -> None:
        set_ = lambda name, value: object.__setattr__(self, name, value)  # noqa: E731
        if isinstance(self.workload, str):
            if self.workload not in network_registry:
                raise ValueError(
                    f"unknown network {self.workload!r}; known: "
                    f"{sorted(network_registry)}")
            set_("workload", self.workload.lower())
        else:
            layers = tuple(self.workload)
            if not layers or not all(isinstance(l, LayerShape)
                                     for l in layers):
                raise ValueError(
                    "workload must be a registered network name or a "
                    "non-empty sequence of LayerShape objects, got "
                    f"{self.workload!r}")
            set_("workload", layers)
        dataflows = ((self.dataflows,) if isinstance(self.dataflows, str)
                     else tuple(self.dataflows))
        if not dataflows:
            dataflows = tuple(dataflow_registry)
        try:
            set_("dataflows", tuple(dataflow_registry.canonical(n)
                                    for n in dataflows))
        except KeyError as exc:
            raise ValueError(str(exc.args[0])) from None
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        set_("pe_counts", _positive_tuple(self.pe_counts, "pe_counts"))
        set_("array_shapes", _shape_tuple(self.array_shapes))
        if not self.pe_counts and not self.array_shapes:
            raise ValueError(
                "a design space needs at least one PE-array geometry: "
                "set pe_counts and/or array_shapes")
        set_("rf_choices", _positive_tuple(self.rf_choices, "rf_choices",
                                           minimum=0))
        if not self.rf_choices:
            raise ValueError("rf_choices must name at least one RF size")
        if self.equal_area and self.glb_choices is not None:
            raise ValueError(
                "equal_area=True derives the global buffer from the area "
                "budget; explicit glb_choices are contradictory")
        if self.glb_choices is not None:
            glb = _positive_tuple(self.glb_choices, "glb_choices",
                                  minimum=0)
            if not glb:
                raise ValueError(
                    "glb_choices must name at least one buffer size")
            set_("glb_choices", glb)
        if self.area_budget is not None and self.area_budget <= 0:
            raise ValueError(
                f"area_budget must be positive, got {self.area_budget}")
        try:
            set_("objective", objective_registry.canonical(self.objective))
        except KeyError:
            raise ValueError(
                f"unknown objective {self.objective!r}; known: "
                f"{list(objective_registry)}") from None
        metrics = ((self.metrics,) if isinstance(self.metrics, str)
                   else tuple(self.metrics))
        unknown = [m for m in metrics if m not in CANDIDATE_METRICS]
        if unknown or not metrics:
            raise ValueError(
                f"unknown Pareto metric(s) {unknown}; known: "
                f"{list(CANDIDATE_METRICS)}")
        set_("metrics", metrics)

    # ------------------------------------------------------------------

    @property
    def workload_name(self) -> str:
        """The registry name, or ``"custom"`` for explicit layers."""
        return (self.workload if isinstance(self.workload, str)
                else CUSTOM_WORKLOAD)

    def layers(self) -> Tuple[LayerShape, ...]:
        """The layer list every candidate evaluates (at ``batch``)."""
        if isinstance(self.workload, str):
            return tuple(get_network(self.workload)(self.batch))
        return self.workload

    def geometries(self) -> Tuple[Tuple[int, int], ...]:
        """The deduplicated (height, width) array geometries, in order."""
        seen = []
        for num_pes in self.pe_counts:
            shape = square_array_geometry(num_pes)
            if shape not in seen:
                seen.append(shape)
        for shape in self.array_shapes:
            if shape not in seen:
                seen.append(shape)
        return tuple(seen)

    def _budget(self, num_pes: int) -> float:
        """The storage-area budget one geometry is held to."""
        if self.area_budget is not None:
            return self.area_budget
        return baseline_storage_area(num_pes)

    def points(self) -> Tuple[DesignPoint, ...]:
        """Expand the hardware axes into concrete design points.

        Equal-area mode derives each point's buffer from the budget and
        prunes (geometry, rf) pairs whose RF area alone exceeds it;
        free mode filters enumerated points against ``area_budget``
        when one is set.  Raises :class:`EmptyDesignSpaceError` when
        everything was pruned.
        """
        out: List[DesignPoint] = []
        for h, w in self.geometries():
            num_pes = h * w
            for rf in self.rf_choices:
                if self.equal_area:
                    try:
                        allocation = allocate_storage(
                            num_pes, rf, self._budget(num_pes))
                    except ValueError:
                        continue  # RF alone exceeds the area budget
                    out.append(DesignPoint(
                        array_h=h, array_w=w, rf_bytes_per_pe=rf,
                        buffer_bytes=allocation.buffer_words
                        * BYTES_PER_WORD))
                    continue
                glb_options = (self.glb_choices
                               if self.glb_choices is not None
                               else (num_pes * BASELINE_GLB_BYTES_PER_PE,))
                for glb in glb_options:
                    point = DesignPoint(array_h=h, array_w=w,
                                        rf_bytes_per_pe=rf,
                                        buffer_bytes=glb)
                    if (self.area_budget is not None
                            and point.area > self.area_budget):
                        continue  # outside the fixed-area envelope
                    out.append(point)
        if not out:
            raise EmptyDesignSpaceError(
                "expands to no valid hardware point (every geometry x "
                "storage choice exceeds the area budget)")
        return tuple(out)

    def candidates(self) -> Tuple[Tuple[str, DesignPoint], ...]:
        """The (dataflow, point) pairs to evaluate, in expansion order."""
        points = self.points()
        return tuple((dataflow, point) for dataflow in self.dataflows
                     for point in points)


# ----------------------------------------------------------------------
# Candidate rows and the Pareto reduction.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DseCandidate:
    """One evaluated (dataflow, design point) row of an exploration.

    The scalar fields round-trip through JSON; ``evaluation`` keeps the
    full :class:`~repro.energy.model.NetworkEvaluation` for in-process
    consumers and is dropped -- not compared -- on serialization.
    """

    workload: str
    dataflow: str
    batch: int
    objective: str
    array_h: int
    array_w: int
    num_pes: int
    rf_bytes_per_pe: int
    buffer_bytes: int
    area: float
    feasible: bool
    energy_per_op: float = float("nan")
    delay_per_op: float = float("nan")
    edp_per_op: float = float("nan")
    dram_reads_per_op: float = float("nan")
    dram_writes_per_op: float = float("nan")
    dram_accesses_per_op: float = float("nan")
    evaluation: Optional[NetworkEvaluation] = field(
        default=None, compare=False, repr=False)

    @classmethod
    def from_evaluation(cls, space: DesignSpace, dataflow: str,
                        point: DesignPoint,
                        evaluation: NetworkEvaluation) -> "DseCandidate":
        """Fold one candidate's engine answer into a row."""
        common = dict(
            workload=space.workload_name, dataflow=dataflow,
            batch=space.batch, objective=space.objective,
            array_h=point.array_h, array_w=point.array_w,
            num_pes=point.num_pes,
            rf_bytes_per_pe=point.rf_bytes_per_pe,
            buffer_bytes=point.buffer_bytes, area=point.area,
            evaluation=evaluation)
        if not evaluation.feasible:
            return cls(feasible=False, **common)
        return cls(
            feasible=True,
            energy_per_op=evaluation.energy_per_op,
            delay_per_op=evaluation.delay_per_op,
            edp_per_op=evaluation.edp_per_op,
            dram_reads_per_op=evaluation.dram_reads_per_op,
            dram_writes_per_op=evaluation.dram_writes_per_op,
            dram_accesses_per_op=evaluation.dram_accesses_per_op,
            **common)

    def to_dict(self) -> Dict:
        """A JSON-safe dict; metric columns only when feasible."""
        data: Dict = {
            "workload": self.workload, "dataflow": self.dataflow,
            "batch": self.batch, "objective": self.objective,
            "array_h": self.array_h, "array_w": self.array_w,
            "num_pes": self.num_pes,
            "rf_bytes_per_pe": self.rf_bytes_per_pe,
            "buffer_bytes": self.buffer_bytes, "area": self.area,
            "feasible": self.feasible,
        }
        if self.feasible:
            data.update({name: getattr(self, name)
                         for name in CANDIDATE_METRICS if name != "area"})
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "DseCandidate":
        """Rebuild a row from :meth:`to_dict` output (sans evaluation)."""
        known = {f.name for f in fields(cls)} - {"evaluation"}
        payload = {k: v for k, v in data.items() if k != "on_front"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown candidate field(s) {sorted(unknown)}; "
                f"known: {sorted(known)}")
        return cls(**payload)


def dominates(a: DseCandidate, b: DseCandidate,
              metrics: Sequence[str]) -> bool:
    """True when ``a`` Pareto-dominates ``b``: no worse on every metric
    and strictly better on at least one (all metrics are minimized)."""
    strictly_better = False
    for name in metrics:
        va, vb = getattr(a, name), getattr(b, name)
        if va > vb:
            return False
        if va < vb:
            strictly_better = True
    return strictly_better


def pareto_front(candidates: Sequence[DseCandidate],
                 metrics: Sequence[str] = DEFAULT_METRICS
                 ) -> Tuple[DseCandidate, ...]:
    """The non-dominated subset of ``candidates``, in input order.

    Infeasible rows never reach the front; rows tied on every metric
    are mutually non-dominating and all survive.  The result is a pure
    function of the input order, which the engine keeps deterministic
    across serial and parallel evaluation -- hence bit-identical fronts.
    """
    feasible = [c for c in candidates if c.feasible]
    return tuple(
        c for c in feasible
        if not any(dominates(other, c, metrics) for other in feasible))


@dataclass(frozen=True)
class ParetoSet:
    """An exploration's answer: every candidate plus its Pareto frontier.

    Iterating (and ``len``) covers the frontier; :attr:`candidates`
    retains the full evaluated space for export and audit, and
    :attr:`dominated` is the difference.
    """

    candidates: Tuple[DseCandidate, ...]
    metrics: Tuple[str, ...]
    frontier: Tuple[DseCandidate, ...]

    @classmethod
    def reduce(cls, candidates: Sequence[DseCandidate],
               metrics: Sequence[str] = DEFAULT_METRICS) -> "ParetoSet":
        """Reduce evaluated candidates to their non-dominated frontier."""
        candidates = tuple(candidates)
        metrics = tuple(metrics)
        return cls(candidates=candidates, metrics=metrics,
                   frontier=pareto_front(candidates, metrics))

    def __iter__(self) -> Iterator[DseCandidate]:
        return iter(self.frontier)

    def __len__(self) -> int:
        return len(self.frontier)

    @property
    def dominated(self) -> Tuple[DseCandidate, ...]:
        """Feasible candidates beaten by some frontier point."""
        on_front = set(map(id, self.frontier))
        return tuple(c for c in self.candidates
                     if c.feasible and id(c) not in on_front)

    @property
    def feasible_candidates(self) -> Tuple[DseCandidate, ...]:
        """Every candidate with at least one valid mapping."""
        return tuple(c for c in self.candidates if c.feasible)

    def best(self, metric: str = "energy_per_op"
             ) -> Optional[DseCandidate]:
        """The frontier point minimizing one metric (None when empty)."""
        if not self.frontier:
            return None
        return min(self.frontier, key=lambda c: getattr(c, metric))

    # -- serialization --------------------------------------------------

    def to_dicts(self, include_dominated: bool = False) -> List[Dict]:
        """JSON-safe rows tagged with ``on_front`` membership."""
        on_front = set(map(id, self.frontier))
        rows = (self.candidates if include_dominated else self.frontier)
        return [dict(row.to_dict(), on_front=id(row) in on_front)
                for row in rows]

    def to_json(self, indent: Optional[int] = None,
                include_dominated: bool = False) -> str:
        """The :meth:`to_dicts` rows as a JSON document."""
        return json.dumps(self.to_dicts(include_dominated), indent=indent)

    def to_table(self, title: Optional[str] = None,
                 rows: Optional[Sequence[DseCandidate]] = None) -> str:
        """Render candidate rows (default: the frontier) as a table."""
        from repro.analysis.report import format_table  # lazy: avoids cycle

        table = []
        for c in (self.frontier if rows is None else rows):
            metrics = ([f"{c.energy_per_op:.3f}", f"{c.delay_per_op:.5f}",
                        f"{c.edp_per_op:.5f}"] if c.feasible
                       else ["infeasible", "-", "-"])
            table.append([
                c.dataflow, f"{c.array_h}x{c.array_w}",
                f"{c.rf_bytes_per_pe} B",
                f"{c.buffer_bytes / 1024:.0f} kB", f"{c.area:.0f}",
                *metrics])
        return format_table(
            ["dataflow", "array", "RF/PE", "buffer", "area", "energy/op",
             "delay/op", "EDP/op"], table, title=title)


# ----------------------------------------------------------------------
# Exploration: the engine-backed evaluation of a whole space.
# ----------------------------------------------------------------------


def explore(space: DesignSpace, *, session=None,
            parallel: Optional[bool] = None) -> ParetoSet:
    """Evaluate every candidate of ``space`` and reduce to a Pareto set.

    Candidates become :class:`~repro.engine.core.NetworkJob` cells of
    one deduplicated engine batch: layers fan out across the session's
    worker pool, and any (dataflow, layer, hardware, objective)
    sub-problem seen before -- in this exploration, a previous one, or
    any other driver sharing the session -- is answered from the cache
    tiers instead of re-running the mapping search.

    ``session`` defaults to :func:`repro.api.default_session` (the
    process-wide shared engine); ``parallel`` overrides the session's
    pool policy for this call only.  Results are bit-identical across
    the serial and parallel paths.
    """
    if session is None:
        from repro.api import default_session  # lazy: api imports dse
        session = default_session()
    cells = space.candidates()
    layers = space.layers()
    jobs = [NetworkJob(get_dataflow(dataflow), layers, point.hardware,
                       space.objective) for dataflow, point in cells]
    evaluations = session.engine.evaluate_networks(jobs, parallel=parallel)
    candidates = tuple(
        DseCandidate.from_evaluation(space, dataflow, point, evaluation)
        for (dataflow, point), evaluation in zip(cells, evaluations))
    recorder = getattr(session, "record_dse_candidates", None)
    if recorder is not None:
        # Recording sessions persist every evaluated candidate (not
        # just the frontier) into the experiment store's cells table.
        recorder(candidates)
    return ParetoSet.reduce(candidates, space.metrics)


# ----------------------------------------------------------------------
# Built-in named design spaces (the registry's seed entries).
# ----------------------------------------------------------------------


@register_design_space("equal-area-grid")
def equal_area_grid() -> DesignSpace:
    """The Section VI-B methodology as a ready-made space: every
    dataflow on AlexNet CONV, PE counts x RF sizes under the Eq. (2)
    equal-area budget (the buffer is derived, not enumerated)."""
    return DesignSpace(workload="alexnet-conv", equal_area=True,
                       pe_counts=(128, 256, 512),
                       rf_choices=(128, 256, 512, 1024))


@register_design_space("chip-neighborhood")
def chip_neighborhood() -> DesignSpace:
    """Free-mode sweep around the fabricated chip's operating point:
    non-square geometries near 12x14, RF and buffer sizes bracketing
    the 512 B / 108 kB silicon (Fig. 4)."""
    return DesignSpace(workload="alexnet-conv", batch=1,
                       dataflows=("RS",),
                       array_shapes=((10, 14), (12, 14), (14, 14)),
                       rf_choices=(256, 512),
                       glb_choices=(64 * 1024, 108 * 1024))
