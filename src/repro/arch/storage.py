"""Storage allocation under a fixed area budget (Eq. (2) and Fig. 7b).

Section VI-B fixes the comparison between dataflows by granting each the
same number of PEs and the same total *storage area*, computed from the
baseline setup of 512 B RF per PE plus a (#PE x 512 B) global buffer:

    baseline_area = #PE * Area(512B RF) + Area(#PE * 512B buffer)   (Eq. 2)

Each dataflow then chooses its RF size (e.g. RS keeps 512 B, WS needs only
one weight, NLR has no RF at all) and the remaining area is converted into
global-buffer bytes using the Fig. 7a area curve.  Because small memories
cost more area per byte, dataflows with big RFs end up with *less total
storage* (Fig. 7b: an up-to-80 kB spread, up to 2.6x buffer difference).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.area import area_per_byte, buffer_size_for_area, storage_area

#: Word width used throughout the paper's experiments (16-bit fixed point).
BYTES_PER_WORD = 2

#: Baseline RF size per PE used to define the area budget (Eq. (2)).
BASELINE_RF_BYTES = 512


def baseline_storage_area(num_pes: int) -> float:
    """Eq. (2): the storage-area budget for a given PE count."""
    if num_pes < 1:
        raise ValueError(f"need at least one PE, got {num_pes}")
    rf_area = num_pes * storage_area(BASELINE_RF_BYTES)
    buffer_area = storage_area(num_pes * BASELINE_RF_BYTES)
    return rf_area + buffer_area


@dataclass(frozen=True)
class StorageAllocation:
    """Resolved on-chip storage for one dataflow under the area budget."""

    num_pes: int
    rf_bytes_per_pe: int
    buffer_bytes: float
    area_budget: float

    @property
    def rf_words_per_pe(self) -> int:
        """RF capacity in 16-bit words."""
        return self.rf_bytes_per_pe // BYTES_PER_WORD

    @property
    def buffer_words(self) -> int:
        """Global-buffer capacity in 16-bit words."""
        return int(self.buffer_bytes) // BYTES_PER_WORD

    @property
    def total_rf_bytes(self) -> int:
        """Aggregate RF capacity across the PE array."""
        return self.num_pes * self.rf_bytes_per_pe

    @property
    def total_storage_bytes(self) -> float:
        """Total on-chip storage (RF + buffer), the Fig. 7b quantity."""
        return self.total_rf_bytes + self.buffer_bytes

    @property
    def used_area(self) -> float:
        """Area actually consumed (should match the budget to tolerance)."""
        rf_area = self.num_pes * storage_area(self.rf_bytes_per_pe)
        return rf_area + storage_area(self.buffer_bytes)


def allocate_storage(num_pes: int, rf_bytes_per_pe: int,
                     area_budget: float | None = None) -> StorageAllocation:
    """Divide the Eq. (2) area budget between RF and global buffer.

    Parameters
    ----------
    num_pes:
        Number of processing engines.
    rf_bytes_per_pe:
        The RF capacity this dataflow requires per PE (0 for NLR).
    area_budget:
        Total storage area; defaults to :func:`baseline_storage_area`.

    Raises
    ------
    ValueError
        If the requested RF alone exceeds the area budget.
    """
    if rf_bytes_per_pe < 0:
        raise ValueError("RF size cannot be negative")
    budget = baseline_storage_area(num_pes) if area_budget is None else area_budget
    rf_area = num_pes * storage_area(rf_bytes_per_pe)
    remaining = budget - rf_area
    if remaining < 0:
        raise ValueError(
            f"RF allocation ({rf_bytes_per_pe} B x {num_pes} PEs, area "
            f"{rf_area:.0f}) exceeds the storage-area budget {budget:.0f}"
        )
    buffer_bytes = buffer_size_for_area(remaining)
    return StorageAllocation(
        num_pes=num_pes,
        rf_bytes_per_pe=rf_bytes_per_pe,
        buffer_bytes=buffer_bytes,
        area_budget=budget,
    )


def rf_area_fraction(allocation: StorageAllocation) -> float:
    """Fraction of the storage area spent on register files."""
    rf_area = allocation.num_pes * storage_area(allocation.rf_bytes_per_pe)
    return rf_area / allocation.area_budget if allocation.area_budget else 0.0


def describe_allocation(allocation: StorageAllocation) -> str:
    """Human-readable summary used by the Fig. 7b report."""
    return (
        f"{allocation.num_pes} PEs: RF {allocation.rf_bytes_per_pe} B/PE "
        f"(total {allocation.total_rf_bytes / 1024:.1f} kB), buffer "
        f"{allocation.buffer_bytes / 1024:.1f} kB, total storage "
        f"{allocation.total_storage_bytes / 1024:.1f} kB"
    )
