"""Network-on-chip models for the PE array (Sections II and V-E).

The Eyeriss architecture uses three logical networks: a global multicast
NoC for filters, a global multicast NoC for ifmaps, and a local PE-to-PE
network for psums.  The analysis framework charges every array-level hop
the single Table IV "array" cost, but the functional simulator uses these
classes to route data and to count hop distances, which supports the
Section VI-D side-note analysis (short neighbor transfers vs long
broadcasts).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

Coordinate = Tuple[int, int]


class TransferKind(enum.Enum):
    """Classification of array-level transfers for the Sec. VI-D analysis."""

    NEIGHBOR = "neighbor"      # PE to adjacent PE (psum accumulation)
    MULTICAST = "multicast"    # buffer to a set of PEs (filter/ifmap rows)
    UNICAST = "unicast"        # buffer to a single PE


@dataclass
class TransferRecord:
    """One logical delivery of a row/word group over the array."""

    kind: TransferKind
    words: int
    destinations: int
    max_hops: int


@dataclass
class MulticastNoc:
    """Global Y-then-X multicast network (filters and ifmaps).

    Models delivery from the buffer port at (0, 0) to a group of PEs; the
    hop count of a delivery is the Manhattan distance to the farthest
    destination, which approximates wire length for the Sec. VI-D
    refinement.
    """

    array_h: int
    array_w: int
    records: List[TransferRecord] = field(default_factory=list)

    def multicast(self, destinations: Iterable[Coordinate], words: int) -> TransferRecord:
        """Deliver ``words`` to every destination in one multicast."""
        dests = list(destinations)
        if not dests:
            raise ValueError("multicast requires at least one destination")
        for (r, c) in dests:
            self._check_coord(r, c)
        max_hops = max(r + c for (r, c) in dests)
        kind = TransferKind.MULTICAST if len(dests) > 1 else TransferKind.UNICAST
        record = TransferRecord(kind=kind, words=words,
                                destinations=len(dests), max_hops=max_hops)
        self.records.append(record)
        return record

    def _check_coord(self, r: int, c: int) -> None:
        if not (0 <= r < self.array_h and 0 <= c < self.array_w):
            raise ValueError(
                f"PE ({r},{c}) outside {self.array_h}x{self.array_w} array"
            )

    @property
    def total_words_delivered(self) -> int:
        """Words x destinations: what the Table IV array cost is charged on."""
        return sum(rec.words * rec.destinations for rec in self.records)


@dataclass
class LocalPsumNoc:
    """Local PE-to-PE links used for vertical psum accumulation."""

    array_h: int
    array_w: int
    records: List[TransferRecord] = field(default_factory=list)

    def send(self, src: Coordinate, dst: Coordinate, words: int) -> TransferRecord:
        """Move ``words`` between neighbouring PEs point-to-point."""
        hops = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
        if hops != 1:
            raise ValueError(
                f"local psum NoC only connects adjacent PEs; {src} -> {dst} "
                f"is {hops} hops"
            )
        record = TransferRecord(kind=TransferKind.NEIGHBOR, words=words,
                                destinations=1, max_hops=1)
        self.records.append(record)
        return record

    @property
    def total_words_delivered(self) -> int:
        """Total words delivered across all point-to-point sends."""
        return sum(rec.words for rec in self.records)


def transfer_summary(records: Iterable[TransferRecord]) -> Dict[TransferKind, int]:
    """Words delivered by transfer kind, for the Sec. VI-D breakdown."""
    summary: Dict[TransferKind, int] = {kind: 0 for kind in TransferKind}
    for rec in records:
        summary[rec.kind] += rec.words * rec.destinations
    return summary
