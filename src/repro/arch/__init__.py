"""Spatial-architecture hardware model (Section II and VI-B of the paper)."""

from repro.arch.area import area_per_byte, storage_area
from repro.arch.energy_costs import EnergyCosts, MemoryLevel
from repro.arch.hardware import HardwareConfig
from repro.arch.storage import StorageAllocation, allocate_storage, baseline_storage_area

__all__ = [
    "area_per_byte",
    "storage_area",
    "EnergyCosts",
    "MemoryLevel",
    "HardwareConfig",
    "StorageAllocation",
    "allocate_storage",
    "baseline_storage_area",
]
