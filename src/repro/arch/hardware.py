"""Top-level hardware configuration of the spatial accelerator (Section II).

A :class:`HardwareConfig` bundles everything a dataflow's mapper needs to
know about the machine: the PE-array geometry, per-PE register-file
capacity, global-buffer capacity, and the energy cost table.  Factory
helpers construct the paper's experimental setups (e.g. the 256-PE
baseline with 512 B RF and 128 kB buffer used in Fig. 10, or the
equal-area configurations of Section VI-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.arch.energy_costs import EnergyCosts
from repro.arch.storage import (
    BYTES_PER_WORD,
    StorageAllocation,
    allocate_storage,
)


@dataclass(frozen=True)
class HardwareConfig:
    """A concrete spatial-architecture instance.

    Attributes
    ----------
    num_pes:
        Total processing engines in the array.
    array_h, array_w:
        Physical array geometry (rows x cols).  The paper's chip is 12x14;
        the analysis experiments use square arrays (16x16, ...).
    rf_words_per_pe:
        Register-file capacity per PE, in 16-bit words.
    buffer_words:
        Global-buffer capacity, in 16-bit words.
    costs:
        Per-access energy table (defaults to Table IV).
    """

    num_pes: int
    array_h: int
    array_w: int
    rf_words_per_pe: int
    buffer_words: int
    costs: EnergyCosts = EnergyCosts()

    def __post_init__(self) -> None:
        if self.num_pes < 1:
            raise ValueError("num_pes must be positive")
        if self.array_h * self.array_w != self.num_pes:
            raise ValueError(
                f"array geometry {self.array_h}x{self.array_w} does not "
                f"match num_pes={self.num_pes}"
            )
        if self.rf_words_per_pe < 0 or self.buffer_words < 0:
            raise ValueError("storage capacities cannot be negative")

    # ------------------------------------------------------------------

    @property
    def rf_bytes_per_pe(self) -> int:
        """Register-file capacity per PE, in bytes."""
        return self.rf_words_per_pe * BYTES_PER_WORD

    @property
    def buffer_bytes(self) -> int:
        """Global-buffer capacity, in bytes."""
        return self.buffer_words * BYTES_PER_WORD

    @property
    def total_rf_words(self) -> int:
        """Aggregate RF capacity across the array, in words."""
        return self.num_pes * self.rf_words_per_pe

    def with_costs(self, costs: EnergyCosts) -> "HardwareConfig":
        """Copy of this configuration with a different cost table."""
        return replace(self, costs=costs)

    def describe(self) -> str:
        """One-line human-readable summary of the configuration."""
        return (
            f"{self.num_pes} PEs ({self.array_h}x{self.array_w}), "
            f"{self.rf_bytes_per_pe} B RF/PE, "
            f"{self.buffer_bytes / 1024:.0f} kB buffer"
        )

    # ------------------------------------------------------------------
    # Factory helpers.
    # ------------------------------------------------------------------

    @classmethod
    def from_allocation(cls, allocation: StorageAllocation,
                        costs: EnergyCosts | None = None) -> "HardwareConfig":
        """Build a config from an equal-area storage allocation."""
        h, w = square_array_geometry(allocation.num_pes)
        return cls(
            num_pes=allocation.num_pes,
            array_h=h,
            array_w=w,
            rf_words_per_pe=allocation.rf_words_per_pe,
            buffer_words=allocation.buffer_words,
            costs=costs or EnergyCosts(),
        )

    @classmethod
    def eyeriss_paper_baseline(cls, num_pes: int = 256) -> "HardwareConfig":
        """The Fig. 10 setup: 512 B RF per PE and a 128 kB global buffer.

        For other PE counts the buffer scales with the PE count as in the
        Eq. (2) baseline (#PE x 512 B).
        """
        h, w = square_array_geometry(num_pes)
        return cls(
            num_pes=num_pes,
            array_h=h,
            array_w=w,
            rf_words_per_pe=512 // BYTES_PER_WORD,
            buffer_words=(num_pes * 512) // BYTES_PER_WORD,
        )

    @classmethod
    def eyeriss_chip(cls) -> "HardwareConfig":
        """The fabricated Eyeriss chip (Fig. 4): 168 PEs (12x14),
        0.5 kB RF per PE, 108 kB global buffer."""
        return cls(
            num_pes=168,
            array_h=12,
            array_w=14,
            rf_words_per_pe=512 // BYTES_PER_WORD,
            buffer_words=(108 * 1024) // BYTES_PER_WORD,
        )

    @classmethod
    def equal_area(cls, num_pes: int, rf_bytes_per_pe: int,
                   area_budget: float | None = None,
                   costs: EnergyCosts | None = None) -> "HardwareConfig":
        """Section VI-B setup: allocate storage under the Eq. (2) budget."""
        allocation = allocate_storage(num_pes, rf_bytes_per_pe, area_budget)
        return cls.from_allocation(allocation, costs)


def square_array_geometry(num_pes: int) -> tuple[int, int]:
    """The most-square (h, w) factorization of a PE count, h <= w.

    Used for the analysis experiments (256 -> 16x16, 512 -> 16x32,
    1024 -> 32x32, 168 -> 12x14).
    """
    best = (1, num_pes)
    for h in range(1, int(math.isqrt(num_pes)) + 1):
        if num_pes % h == 0:
            best = (h, num_pes // h)
    return best
