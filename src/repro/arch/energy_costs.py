"""Normalized data-access energy costs (Table IV of the paper).

Table IV gives the energy of one access at each level of the storage
hierarchy, normalized to one MAC operation, extracted from a commercial
65 nm process:

==================  ==========  =================
Level               Condition   Normalized energy
==================  ==========  =================
DRAM                            200x
Global buffer       > 100 kB    6x
Array (inter-PE)    1-2 mm      2x
RF                  0.5 kB      1x
==================  ==========  =================

The DRAM and buffer costs aggregate the storage access plus the
iFIFO/oFIFO; the array cost includes the FIFOs on both ends and wire
capacitance.  The cost of moving data between two levels is dominated by
the more expensive one (Section VI-C), which is why Eqs. (3)/(4) charge
a single level per hop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MemoryLevel(enum.Enum):
    """The four levels of the data-movement hierarchy, plus the ALU."""

    DRAM = "DRAM"
    BUFFER = "Buffer"
    ARRAY = "Array"
    RF = "RF"
    ALU = "ALU"

    @classmethod
    def storage_levels(cls) -> tuple["MemoryLevel", ...]:
        """The four storage levels ordered from most to least expensive."""
        return (cls.DRAM, cls.BUFFER, cls.ARRAY, cls.RF)


@dataclass(frozen=True)
class EnergyCosts:
    """Per-access energy at each hierarchy level, normalized to one MAC.

    Defaults reproduce Table IV.  Alternative technology points can be
    modelled by constructing a different instance (used by the ablation
    benchmarks to test sensitivity of the dataflow ranking to the cost
    ratios).
    """

    dram: float = 200.0
    buffer: float = 6.0
    array: float = 2.0
    rf: float = 1.0
    alu: float = 1.0

    def __post_init__(self) -> None:
        for name in ("dram", "buffer", "array", "rf", "alu"):
            if getattr(self, name) < 0:
                raise ValueError(f"energy cost {name} must be non-negative")
        if not (self.dram >= self.buffer >= self.array >= self.rf):
            raise ValueError(
                "energy costs must be non-increasing from DRAM down to RF "
                f"(got dram={self.dram}, buffer={self.buffer}, "
                f"array={self.array}, rf={self.rf})"
            )

    def cost(self, level: MemoryLevel) -> float:
        """EC(level): the normalized energy of one access at ``level``."""
        return {
            MemoryLevel.DRAM: self.dram,
            MemoryLevel.BUFFER: self.buffer,
            MemoryLevel.ARRAY: self.array,
            MemoryLevel.RF: self.rf,
            MemoryLevel.ALU: self.alu,
        }[level]

    @classmethod
    def table_iv(cls) -> "EnergyCosts":
        """The exact Table IV numbers (also the default constructor)."""
        return cls()
