"""Storage area model: normalized area per byte vs memory size (Fig. 7a).

Fig. 7a of the paper shows that small memories (flip-flop based register
files) cost up to ~14x more area per byte than large SRAM macros (~2x at
hundreds of kilobytes).  The paper uses this curve to trade off register
file capacity against global-buffer capacity under a fixed total storage
area (Section VI-B / Fig. 7b).

The exact commercial-library curve is proprietary; we reconstruct it by
log-linear interpolation through anchor points read off Fig. 7a.  Only the
*relative* shape matters: it determines how many total bytes each dataflow
gets for the same area, which is what Fig. 7b reports.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

# Anchor points (size_bytes, normalized_area_per_byte) read off Fig. 7a and
# calibrated so the Fig. 7b aggregates hold: with 256 PEs the total-storage
# spread across dataflows is ~80 kB and the global-buffer ratio reaches
# ~2.6x (Section VI-B).  Flip-flop storage dominates below ~100 B; SRAM
# efficiency saturates around 2x for memories of hundreds of kilobytes.
_AREA_CURVE: Tuple[Tuple[float, float], ...] = (
    (1.0, 14.0),
    (16.0, 14.0),
    (64.0, 8.0),
    (256.0, 4.0),
    (512.0, 3.1),
    (1024.0, 2.8),
    (4096.0, 2.5),
    (16384.0, 2.35),
    (65536.0, 2.25),
    (131072.0, 2.2),
    (524288.0, 2.0),
    (4194304.0, 2.0),
)


def area_per_byte(size_bytes: float) -> float:
    """Normalized area cost per byte of a memory of ``size_bytes``.

    Piecewise log-linear interpolation through the Fig. 7a anchors;
    clamped to the curve's endpoints outside the anchor range.  A memory
    of size zero occupies no area and returns 0.
    """
    if size_bytes < 0:
        raise ValueError(f"memory size must be non-negative, got {size_bytes}")
    if size_bytes == 0:
        return 0.0
    curve = _AREA_CURVE
    if size_bytes <= curve[0][0]:
        return curve[0][1]
    if size_bytes >= curve[-1][0]:
        return curve[-1][1]
    for (s0, a0), (s1, a1) in zip(curve, curve[1:]):
        if s0 <= size_bytes <= s1:
            # Interpolate linearly in log(size).
            t = (math.log(size_bytes) - math.log(s0)) / (math.log(s1) - math.log(s0))
            return a0 + t * (a1 - a0)
    raise AssertionError("unreachable: anchor scan covered the full range")


def storage_area(size_bytes: float) -> float:
    """Total normalized area of a memory: size x area_per_byte(size)."""
    return size_bytes * area_per_byte(size_bytes)


def buffer_size_for_area(target_area: float, *, tolerance: float = 1e-6,
                         max_bytes: float = 64 * 1024 * 1024) -> float:
    """Invert :func:`storage_area`: the buffer size whose area equals target.

    ``storage_area`` is strictly increasing in size (area/byte decreases
    slower than size grows), so a bisection search converges.  Returns 0
    for a non-positive target.
    """
    if target_area <= 0:
        return 0.0
    lo, hi = 0.0, max_bytes
    if storage_area(hi) < target_area:
        raise ValueError(
            f"target area {target_area} exceeds the area of the maximum "
            f"modelled memory ({max_bytes} bytes)"
        )
    while hi - lo > tolerance * max(1.0, hi):
        mid = (lo + hi) / 2
        if storage_area(mid) < target_area:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def curve_anchors() -> Sequence[Tuple[float, float]]:
    """The (size, area/byte) anchor points of the modelled Fig. 7a curve."""
    return _AREA_CURVE
