"""The SQLite experiment store: a queryable system of record.

The persistent cache tier used to be a flat pickle snapshot keyed only
for reuse -- nothing was queryable across sessions, diffable between
commits, or safe for concurrent readers.  :class:`ExperimentStore`
replaces it with a normalized SQLite database:

* ``runs`` -- one row per recording session, carrying provenance: the
  git commit SHA, the checked-in ``BENCH_perf.json`` record (when
  present), the schema version that wrote it, and timestamps.
* ``dataflows`` / ``objectives`` / ``layers`` / ``hardware`` -- interned
  dimension tables, so a layer shape or hardware point shared by a
  million cells is stored exactly once.  Hardware rows keep both the
  queryable scalar columns (PEs, geometry, RF, buffer) and a pickled
  :class:`~repro.arch.hardware.HardwareConfig` blob for exact
  rehydration (the config embeds its EnergyCosts table).
* ``evaluations`` -- the layer-level system of record, unique on the
  engine's cache identity (dataflow, layer, hardware, objective).  This
  is the table the :class:`~repro.store.tier.StoreTierCache` warm tier
  reads and writes: a re-run of a recorded sweep rescores nothing.
* ``cells`` -- the result-row level: one row per evaluated grid cell or
  DSE candidate, tied to its run, with every scalar metric as a REAL
  column.  SQLite REALs are IEEE doubles, so metric values round-trip
  bit-identically into ``repro query`` output.

Concurrency follows the single-writer / multi-reader WAL discipline:
one writer connection per store instance, guarded by a lock (the
``Session.stream`` completion callbacks write from pool threads), and
every reading thread gets its own connection -- in WAL mode readers
never block on the writer, which is what makes the store safe to query
while a service-tier sweep is streaming cells into it.

Snapshots are versioned (:data:`SCHEMA_VERSION`) with forward
migrations: an old database is upgraded in place on open, a corrupt or
foreign file raises :class:`StoreFormatError` with a clear message, and
a database written by a *newer* build is refused rather than guessed
at.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import sqlite3
import subprocess
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.engine.cache import MISSING, CacheKey
from repro.arch.hardware import HardwareConfig
from repro.nn.layer import LayerShape, LayerType

if TYPE_CHECKING:  # pragma: no cover - only used as a type
    from repro.energy.model import LayerEvaluation

#: Current schema version, written into ``store_meta`` on creation.
SCHEMA_VERSION = 4

#: Magic tag in ``store_meta`` distinguishing an experiment store from
#: any other SQLite file.
STORE_FORMAT = "repro-experiment-store"

#: Environment variable naming the default store file (the ``repro
#: query``/``--store`` fallback, mirroring ``REPRO_CACHE``).
STORE_ENV = "REPRO_STORE"

#: The scalar metric columns shared by the live Result rows and the
#: ``cells`` table, in schema order.
CELL_METRICS = ("energy_per_op", "delay_per_op", "edp_per_op",
                "dram_reads_per_op", "dram_writes_per_op",
                "dram_accesses_per_op")

#: Attempts per write transaction before the failure propagates.
#: Transient ``sqlite3.OperationalError`` (a locked database from a
#: sibling process, a flaky filesystem, the injected
#: ``store.write_io_error``) rolls the transaction back cleanly, so a
#: retry starts from scratch and the store never holds a partial write.
WRITE_ATTEMPTS = 3

logger = logging.getLogger("repro.store")


class StoreFormatError(ValueError):
    """An experiment store is corrupt, foreign, or from a newer build."""


def default_store_path() -> Optional[Path]:
    """The store file named by ``REPRO_STORE`` (None when unset/empty)."""
    raw = os.environ.get(STORE_ENV, "").strip()
    return Path(raw) if raw else None


def _git(args: Sequence[str], cwd: Optional[Path] = None) -> Optional[str]:
    """One git query, or None outside a checkout / without git."""
    try:
        out = subprocess.run(["git", *args], cwd=cwd, capture_output=True,
                             text=True, timeout=10)
    except OSError:  # pragma: no cover - git missing
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def current_commit(cwd: Optional[Path] = None) -> str:
    """The working tree's commit SHA, or ``"unknown"`` outside git."""
    return _git(["rev-parse", "HEAD"], cwd) or "unknown"


def resolve_commit(ref: str, cwd: Optional[Path] = None) -> str:
    """Resolve a git ref (``HEAD``, a branch, a short SHA) to a full SHA.

    Outside a checkout the ref is returned verbatim, so stores recorded
    elsewhere can still be diffed by their literal recorded SHAs.
    """
    return _git(["rev-parse", ref], cwd) or ref


def bench_provenance(cwd: Optional[Path] = None) -> Optional[str]:
    """The checked-in ``BENCH_perf.json`` record as a JSON string.

    Looked up at the git toplevel (falling back to the working
    directory), validated as JSON; None when absent or unparsable --
    provenance is best-effort, never a reason to fail a run.
    """
    top = _git(["rev-parse", "--show-toplevel"], cwd)
    root = Path(top) if top else (cwd or Path.cwd())
    path = root / "BENCH_perf.json"
    if not path.exists():
        return None
    try:
        return json.dumps(json.loads(path.read_text()), sort_keys=True)
    except (OSError, ValueError):
        return None


# ----------------------------------------------------------------------
# Schema DDL and migrations.
# ----------------------------------------------------------------------

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id         INTEGER PRIMARY KEY AUTOINCREMENT,
    label          TEXT,
    command        TEXT,
    commit_sha     TEXT NOT NULL,
    bench_json     TEXT,
    schema_version INTEGER NOT NULL,
    started_at     TEXT NOT NULL,
    finished_at    TEXT,
    n_cells        INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS dataflows (
    dataflow_id INTEGER PRIMARY KEY,
    name        TEXT UNIQUE NOT NULL
);
CREATE TABLE IF NOT EXISTS objectives (
    objective_id INTEGER PRIMARY KEY,
    name         TEXT UNIQUE NOT NULL
);
CREATE TABLE IF NOT EXISTS layers (
    layer_id INTEGER PRIMARY KEY,
    name TEXT NOT NULL, type TEXT NOT NULL,
    H INTEGER NOT NULL, R INTEGER NOT NULL, E INTEGER NOT NULL,
    C INTEGER NOT NULL, M INTEGER NOT NULL, U INTEGER NOT NULL,
    N INTEGER NOT NULL,
    groups INTEGER NOT NULL DEFAULT 1,
    dilation INTEGER NOT NULL DEFAULT 1,
    UNIQUE(name, type, H, R, E, C, M, U, N, groups, dilation)
);
CREATE TABLE IF NOT EXISTS hardware (
    hardware_id     INTEGER PRIMARY KEY,
    fingerprint     TEXT UNIQUE NOT NULL,
    num_pes         INTEGER NOT NULL,
    array_h         INTEGER NOT NULL,
    array_w         INTEGER NOT NULL,
    rf_bytes_per_pe INTEGER NOT NULL,
    buffer_bytes    INTEGER NOT NULL,
    config          BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS evaluations (
    evaluation_id INTEGER PRIMARY KEY,
    dataflow_id   INTEGER NOT NULL REFERENCES dataflows(dataflow_id),
    layer_id      INTEGER NOT NULL REFERENCES layers(layer_id),
    hardware_id   INTEGER NOT NULL REFERENCES hardware(hardware_id),
    objective_id  INTEGER NOT NULL REFERENCES objectives(objective_id),
    feasible      INTEGER NOT NULL,
    evaluation    BLOB,
    run_id        INTEGER REFERENCES runs(run_id),
    UNIQUE(dataflow_id, layer_id, hardware_id, objective_id)
);
CREATE TABLE IF NOT EXISTS cells (
    cell_id         INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id          INTEGER NOT NULL REFERENCES runs(run_id),
    kind            TEXT NOT NULL DEFAULT 'grid',
    workload        TEXT NOT NULL,
    dataflow_id     INTEGER NOT NULL REFERENCES dataflows(dataflow_id),
    batch           INTEGER NOT NULL,
    num_pes         INTEGER NOT NULL,
    rf_bytes_per_pe INTEGER NOT NULL,
    objective_id    INTEGER NOT NULL REFERENCES objectives(objective_id),
    feasible        INTEGER NOT NULL,
    energy_per_op        REAL,
    delay_per_op         REAL,
    edp_per_op           REAL,
    dram_reads_per_op    REAL,
    dram_writes_per_op   REAL,
    dram_accesses_per_op REAL,
    array_h         INTEGER,
    array_w         INTEGER,
    buffer_bytes    INTEGER,
    area            REAL,
    cand_index      INTEGER,
    space_fp        TEXT
);
CREATE TABLE IF NOT EXISTS explorations (
    space_fp   TEXT PRIMARY KEY,
    run_id     INTEGER NOT NULL REFERENCES runs(run_id),
    total      INTEGER NOT NULL,
    done       INTEGER NOT NULL,
    space_json TEXT,
    started_at TEXT NOT NULL,
    updated_at TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_cells_run ON cells(run_id);
CREATE INDEX IF NOT EXISTS idx_cells_workload ON cells(workload);
CREATE INDEX IF NOT EXISTS idx_cells_space ON cells(space_fp);
CREATE INDEX IF NOT EXISTS idx_runs_commit ON runs(commit_sha);
"""


def _migrate_v1_to_v2(conn: sqlite3.Connection) -> None:
    """v1 -> v2: run-level BENCH provenance and the DSE cell columns.

    Version 1 recorded only grid cells and carried no benchmark record;
    v2 adds ``runs.bench_json`` plus the ``cells`` columns a DSE
    candidate needs (geometry, buffer, area, and the ``kind`` tag).
    """
    for ddl in (
            "ALTER TABLE runs ADD COLUMN bench_json TEXT",
            "ALTER TABLE cells ADD COLUMN kind TEXT NOT NULL "
            "DEFAULT 'grid'",
            "ALTER TABLE cells ADD COLUMN array_h INTEGER",
            "ALTER TABLE cells ADD COLUMN array_w INTEGER",
            "ALTER TABLE cells ADD COLUMN buffer_bytes INTEGER",
            "ALTER TABLE cells ADD COLUMN area REAL",
    ):
        conn.execute(ddl)


def _migrate_v2_to_v3(conn: sqlite3.Connection) -> None:
    """v2 -> v3: streaming-DSE checkpoint/resume support.

    Adds the per-cell exploration identity (``cand_index`` -- the
    candidate's position in its design space's full expansion -- and
    ``space_fp``, the space fingerprint) plus the ``explorations``
    checkpoint table an interrupted exploration resumes from.
    """
    for ddl in (
            "ALTER TABLE cells ADD COLUMN cand_index INTEGER",
            "ALTER TABLE cells ADD COLUMN space_fp TEXT",
            """CREATE TABLE IF NOT EXISTS explorations (
                space_fp   TEXT PRIMARY KEY,
                run_id     INTEGER NOT NULL REFERENCES runs(run_id),
                total      INTEGER NOT NULL,
                done       INTEGER NOT NULL,
                space_json TEXT,
                started_at TEXT NOT NULL,
                updated_at TEXT NOT NULL
            )""",
            "CREATE INDEX IF NOT EXISTS idx_cells_space "
            "ON cells(space_fp)",
    ):
        conn.execute(ddl)


def _migrate_v3_to_v4(conn: sqlite3.Connection) -> None:
    """v3 -> v4: grouped/dilated layer identity.

    ``LayerShape`` grew ``groups`` and ``dilation`` fields, which are
    part of a layer's interned identity.  The uniqueness constraint of
    the ``layers`` table is inline (cannot be ALTERed), so the table is
    rebuilt in place: same ``layer_id`` values (the ``evaluations``
    references stay valid), old rows defaulting to the paper-implicit
    ``groups = dilation = 1``.  The migration driver disables
    foreign-key enforcement around the rebuild (the documented SQLite
    ALTER TABLE procedure) and re-checks the references afterwards.
    """
    conn.execute("""CREATE TABLE layers_v4 (
        layer_id INTEGER PRIMARY KEY,
        name TEXT NOT NULL, type TEXT NOT NULL,
        H INTEGER NOT NULL, R INTEGER NOT NULL, E INTEGER NOT NULL,
        C INTEGER NOT NULL, M INTEGER NOT NULL, U INTEGER NOT NULL,
        N INTEGER NOT NULL,
        groups INTEGER NOT NULL DEFAULT 1,
        dilation INTEGER NOT NULL DEFAULT 1,
        UNIQUE(name, type, H, R, E, C, M, U, N, groups, dilation)
    )""")
    conn.execute(
        "INSERT INTO layers_v4 (layer_id, name, type, H, R, E, C, M, U,"
        " N, groups, dilation)"
        " SELECT layer_id, name, type, H, R, E, C, M, U, N, 1, 1"
        " FROM layers")
    conn.execute("DROP TABLE layers")
    conn.execute("ALTER TABLE layers_v4 RENAME TO layers")


#: Forward migrations, keyed by the version they upgrade *from*.
_MIGRATIONS = {1: _migrate_v1_to_v2, 2: _migrate_v2_to_v3,
               3: _migrate_v3_to_v4}


# ----------------------------------------------------------------------
# Run and diff records.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunRecord:
    """Provenance of one recording session."""

    run_id: int
    commit_sha: str
    started_at: str
    finished_at: Optional[str]
    label: Optional[str] = None
    command: Optional[str] = None
    schema_version: int = SCHEMA_VERSION
    n_cells: int = 0
    bench_json: Optional[str] = None

    def to_dict(self) -> Dict:
        """A JSON-safe summary (the BENCH record stays by reference)."""
        return {
            "run_id": self.run_id, "commit": self.commit_sha,
            "label": self.label, "command": self.command,
            "started_at": self.started_at, "finished_at": self.finished_at,
            "schema_version": self.schema_version, "cells": self.n_cells,
            "has_bench_record": self.bench_json is not None,
        }


@dataclass(frozen=True)
class CellDelta:
    """One cell identity whose metrics changed between two runs."""

    identity: Dict
    metrics: Dict[str, Tuple[Optional[float], Optional[float]]]

    def to_dict(self) -> Dict:
        """JSON form: the identity plus per-metric (a, b) pairs."""
        return {"cell": dict(self.identity),
                "metrics": {name: {"a": a, "b": b}
                            for name, (a, b) in self.metrics.items()}}


@dataclass(frozen=True)
class DiffReport:
    """The cross-run regression report ``repro diff`` renders.

    ``changed`` carries every matched cell identity whose metric values
    differ between the two runs -- the "did the energy model change?"
    signal; ``only_a``/``only_b`` list identities present in one run
    but not the other (coverage drift rather than value drift).
    """

    run_a: RunRecord
    run_b: RunRecord
    matched: int
    identical: int
    changed: Tuple[CellDelta, ...] = ()
    only_a: Tuple[Dict, ...] = ()
    only_b: Tuple[Dict, ...] = ()

    @property
    def clean(self) -> bool:
        """True when the runs agree bit-for-bit on every matched cell."""
        return not self.changed and not self.only_a and not self.only_b

    def to_dict(self) -> Dict:
        """The JSON wire/CLI form of the report."""
        return {
            "run_a": self.run_a.to_dict(),
            "run_b": self.run_b.to_dict(),
            "matched": self.matched,
            "identical": self.identical,
            "changed": [delta.to_dict() for delta in self.changed],
            "only_a": [dict(identity) for identity in self.only_a],
            "only_b": [dict(identity) for identity in self.only_b],
            "clean": self.clean,
        }


# ----------------------------------------------------------------------
# The store proper.
# ----------------------------------------------------------------------


def _utc_now() -> str:
    """An ISO-8601 UTC timestamp (the store's time format)."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def hardware_fingerprint(hw: HardwareConfig) -> str:
    """Stable content hash of a hardware point (EnergyCosts included).

    Built from the frozen dataclass ``repr`` -- deterministic across
    processes and Python builds, unlike a pickle byte hash.
    """
    return hashlib.sha256(repr(hw).encode("utf-8")).hexdigest()


def _pickle(value) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


class ExperimentStore:
    """A normalized, WAL-mode SQLite experiment database.

    One instance owns one *writer* connection, serialized by a lock
    (``Session.stream`` records cells from pool completion threads);
    every reading thread lazily opens its own connection, so queries
    are safe while a sweep is being recorded -- in-process and from
    other processes alike.

    Instances are context managers; :meth:`close` shuts every
    connection down.
    """

    def __init__(self, path: "str | Path", *,
                 timeout: float = 30.0) -> None:
        self.path = Path(path)
        self._timeout = timeout
        self._write_lock = threading.Lock()
        self._local = threading.local()
        self._closed = False
        self._readers: List[sqlite3.Connection] = []
        self._readers_lock = threading.Lock()
        self._writer: Optional[sqlite3.Connection] = None
        try:
            self._writer = self._connect()
            self._initialize()
        except sqlite3.DatabaseError as exc:
            if self._writer is not None:
                self._writer.close()
            raise StoreFormatError(
                f"{self.path} is not a valid experiment store "
                f"(corrupt or foreign file: {exc})") from exc

    # -- connections ----------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=self._timeout,
                               check_same_thread=False)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA foreign_keys=ON")
        return conn

    def _reader(self) -> sqlite3.Connection:
        """This thread's read connection (WAL: never blocks the writer)."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = self._connect()
            self._local.conn = conn
            with self._readers_lock:
                self._readers.append(conn)
        return conn

    def close(self) -> None:
        """Close the writer and every thread-local reader connection."""
        if self._closed:
            return
        self._closed = True
        with self._write_lock:
            self._writer.close()
        with self._readers_lock:
            for conn in self._readers:
                try:
                    conn.close()
                except sqlite3.Error:  # pragma: no cover - already dead
                    pass
            self._readers.clear()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- schema bootstrap and migration --------------------------------

    def _initialize(self) -> None:
        conn = self._writer
        tables = {row[0] for row in conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table'")}
        if not tables:
            with self._write_lock, conn:
                conn.executescript(_SCHEMA)
                conn.execute(
                    "INSERT INTO store_meta (key, value) VALUES (?, ?)",
                    ("format", STORE_FORMAT))
                conn.execute(
                    "INSERT INTO store_meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)))
                conn.execute(
                    "INSERT INTO store_meta (key, value) VALUES (?, ?)",
                    ("created_at", _utc_now()))
            return
        if "store_meta" not in tables:
            raise StoreFormatError(
                f"{self.path} is a SQLite database but not an experiment "
                f"store (no store_meta table)")
        meta = dict(conn.execute("SELECT key, value FROM store_meta"))
        if meta.get("format") != STORE_FORMAT:
            raise StoreFormatError(
                f"{self.path} has format {meta.get('format')!r}; this "
                f"build reads {STORE_FORMAT!r}")
        try:
            version = int(meta.get("schema_version", ""))
        except ValueError:
            raise StoreFormatError(
                f"{self.path} carries an unparsable schema version "
                f"{meta.get('schema_version')!r}") from None
        if version > SCHEMA_VERSION:
            raise StoreFormatError(
                f"{self.path} uses schema v{version}; this build reads "
                f"up to v{SCHEMA_VERSION} -- upgrade the code, not the "
                f"database")
        while version < SCHEMA_VERSION:
            migrate = _MIGRATIONS.get(version)
            if migrate is None:
                raise StoreFormatError(
                    f"{self.path} uses schema v{version} and no migration "
                    f"path to v{SCHEMA_VERSION} exists")
            # Table-rebuilding migrations follow the documented SQLite
            # ALTER TABLE procedure: enforcement off (a no-op inside a
            # transaction, hence around it), rebuild, then an explicit
            # integrity re-check before enforcement returns.
            conn.execute("PRAGMA foreign_keys=OFF")
            try:
                with self._write_lock, conn:
                    migrate(conn)
                    version += 1
                    conn.execute(
                        "UPDATE store_meta SET value=? WHERE key=?",
                        (str(version), "schema_version"))
                broken = conn.execute(
                    "PRAGMA foreign_key_check").fetchone()
                if broken is not None:
                    raise sqlite3.IntegrityError(
                        f"schema migration to v{version} left dangling "
                        f"references: {broken}")
            finally:
                conn.execute("PRAGMA foreign_keys=ON")

    @property
    def schema_version(self) -> int:
        """The schema version of the on-disk database (post-migration)."""
        row = self._reader().execute(
            "SELECT value FROM store_meta WHERE key='schema_version'"
        ).fetchone()
        return int(row[0])

    # -- dimension interning --------------------------------------------

    def _intern(self, conn: sqlite3.Connection, table: str, id_col: str,
                where: Dict, extra: Optional[Dict] = None) -> int:
        """The id of a dimension row, inserting it when new."""
        clause = " AND ".join(f"{name}=?" for name in where)
        row = conn.execute(
            f"SELECT {id_col} FROM {table} WHERE {clause}",
            tuple(where.values())).fetchone()
        if row is not None:
            return row[0]
        payload = {**where, **(extra or {})}
        columns = ", ".join(payload)
        marks = ", ".join("?" for _ in payload)
        cursor = conn.execute(
            f"INSERT INTO {table} ({columns}) VALUES ({marks})",
            tuple(payload.values()))
        return cursor.lastrowid

    def _dataflow_id(self, conn, name: str) -> int:
        return self._intern(conn, "dataflows", "dataflow_id",
                            {"name": name})

    def _objective_id(self, conn, name: str) -> int:
        return self._intern(conn, "objectives", "objective_id",
                            {"name": name})

    def _layer_id(self, conn, layer: LayerShape) -> int:
        return self._intern(conn, "layers", "layer_id", {
            "name": layer.name, "type": layer.layer_type.value,
            "H": layer.H, "R": layer.R, "E": layer.E, "C": layer.C,
            "M": layer.M, "U": layer.U, "N": layer.N,
            "groups": layer.groups, "dilation": layer.dilation})

    def _hardware_id(self, conn, hw: HardwareConfig) -> int:
        return self._intern(
            conn, "hardware", "hardware_id",
            {"fingerprint": hardware_fingerprint(hw)},
            extra={"num_pes": hw.num_pes, "array_h": hw.array_h,
                   "array_w": hw.array_w,
                   "rf_bytes_per_pe": hw.rf_bytes_per_pe,
                   "buffer_bytes": hw.buffer_bytes,
                   "config": _pickle(hw)})

    # -- resilient write transactions ------------------------------------

    def _write_txn(self, body):
        """Run ``body(conn)`` as one write transaction, with retries.

        The body executes under the writer lock inside ``with conn``
        (commit on success, rollback on exception), so a failed attempt
        leaves no partial state and a retry starts clean.  Transient
        ``sqlite3.OperationalError`` -- a sibling process holding the
        database lock past the busy timeout, an I/O hiccup, the
        injected ``store.write_io_error`` -- is retried up to
        :data:`WRITE_ATTEMPTS` times with capped jittered backoff
        (counted as ``store_write_retries`` in ``repro.faults`` stats)
        before propagating.
        """
        last: Optional[sqlite3.OperationalError] = None
        for attempt in range(1, WRITE_ATTEMPTS + 1):
            try:
                with self._write_lock, self._writer as conn:
                    faults.maybe_raise("store.write_io_error",
                                       sqlite3.OperationalError)
                    return body(conn)
            except sqlite3.OperationalError as exc:
                last = exc
                if attempt < WRITE_ATTEMPTS:
                    faults.record("store_write_retries")
                    logger.warning(
                        "store write to %s failed (%s); retrying "
                        "(attempt %d/%d)", self.path, exc, attempt,
                        WRITE_ATTEMPTS)
                    faults.sleep_backoff(attempt)
        raise last

    # -- runs -----------------------------------------------------------

    def begin_run(self, label: Optional[str] = None,
                  command: Optional[str] = None) -> int:
        """Open a new run, capturing commit + BENCH provenance eagerly."""
        def body(conn: sqlite3.Connection) -> int:
            cursor = conn.execute(
                "INSERT INTO runs (label, command, commit_sha, bench_json,"
                " schema_version, started_at) VALUES (?, ?, ?, ?, ?, ?)",
                (label, command, current_commit(), bench_provenance(),
                 SCHEMA_VERSION, _utc_now()))
            return cursor.lastrowid
        return self._write_txn(body)

    def finish_run(self, run_id: int) -> None:
        """Stamp a run finished and freeze its recorded-cell count."""
        def body(conn: sqlite3.Connection) -> None:
            conn.execute(
                "UPDATE runs SET finished_at=?, n_cells="
                "(SELECT COUNT(*) FROM cells WHERE run_id=?) "
                "WHERE run_id=?",
                (_utc_now(), run_id, run_id))
        self._write_txn(body)

    def runs(self, commit: Optional[str] = None) -> List[RunRecord]:
        """Every recorded run, newest first (optionally one commit's)."""
        sql = ("SELECT run_id, commit_sha, started_at, finished_at, label,"
               " command, schema_version, n_cells, bench_json FROM runs")
        args: Tuple = ()
        if commit is not None:
            sql += " WHERE commit_sha=?"
            args = (commit,)
        sql += " ORDER BY run_id DESC"
        return [RunRecord(*row)
                for row in self._reader().execute(sql, args)]

    def run(self, run_id: int) -> RunRecord:
        """One run's provenance record (KeyError when absent)."""
        for record in self.runs():
            if record.run_id == run_id:
                return record
        raise KeyError(f"no run {run_id} in {self.path}")

    # -- the layer-evaluation system of record --------------------------

    _EVAL_LOOKUP = """
        SELECT e.feasible, e.evaluation
        FROM evaluations e
        JOIN dataflows d ON d.dataflow_id = e.dataflow_id
        JOIN objectives o ON o.objective_id = e.objective_id
        JOIN hardware h ON h.hardware_id = e.hardware_id
        JOIN layers l ON l.layer_id = e.layer_id
        WHERE d.name=? AND o.name=? AND h.fingerprint=?
          AND l.name=? AND l.type=? AND l.H=? AND l.R=? AND l.E=?
          AND l.C=? AND l.M=? AND l.U=? AND l.N=? AND l.groups=?
          AND l.dilation=?
    """

    def get_evaluation(self, key: CacheKey):
        """The recorded evaluation under an engine cache key.

        Returns the rehydrated
        :class:`~repro.energy.model.LayerEvaluation` (or None for a
        recorded-infeasible problem), or
        :data:`~repro.engine.cache.MISSING` when the store has never
        seen the key.  A corrupt blob raises :class:`StoreFormatError`.
        """
        layer = key.layer
        row = self._reader().execute(self._EVAL_LOOKUP, (
            key.dataflow, key.objective,
            hardware_fingerprint(key.hardware),
            layer.name, layer.layer_type.value, layer.H, layer.R,
            layer.E, layer.C, layer.M, layer.U, layer.N, layer.groups,
            layer.dilation)).fetchone()
        if row is None:
            return MISSING
        feasible, blob = row
        if not feasible:
            return None
        try:
            return pickle.loads(blob)
        except Exception as exc:
            raise StoreFormatError(
                f"{self.path} holds a corrupt evaluation blob for "
                f"{key.dataflow}/{layer.name}: {exc}") from exc

    def put_evaluations(self, items, run_id: Optional[int] = None) -> int:
        """Record ``(CacheKey, LayerEvaluation | None)`` pairs.

        The table is unique on the cache identity; keys the store has
        already seen are left untouched (evaluations are pure functions
        of their key, so the first write is as good as any).  Returns
        the number of newly recorded keys.
        """
        items = list(items)
        if not items:
            return 0

        def body(conn: sqlite3.Connection) -> int:
            added = 0
            for key, value in items:
                row = (self._dataflow_id(conn, key.dataflow),
                       self._layer_id(conn, key.layer),
                       self._hardware_id(conn, key.hardware),
                       self._objective_id(conn, key.objective))
                cursor = conn.execute(
                    "INSERT OR IGNORE INTO evaluations (dataflow_id,"
                    " layer_id, hardware_id, objective_id, feasible,"
                    " evaluation, run_id) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (*row, 1 if value is not None else 0,
                     _pickle(value) if value is not None else None,
                     run_id))
                added += cursor.rowcount
            return added
        return self._write_txn(body)

    def evaluation_count(self) -> int:
        """Number of layer-evaluation records in the store."""
        return self._reader().execute(
            "SELECT COUNT(*) FROM evaluations").fetchone()[0]

    # -- cells ----------------------------------------------------------

    def record_cells(self, run_id: int, rows, kind: str = "grid",
                     space_fp: Optional[str] = None) -> int:
        """Record result rows (api ``Result`` or ``DseCandidate``).

        Rows carry the uniform identity columns plus, for DSE
        candidates, the geometry/buffer/area extras (absent attributes
        are stored NULL).  Streamed explorations pass ``space_fp`` (the
        design-space fingerprint) and rows with an ``index`` attribute,
        which land in ``cand_index`` -- together the identity
        ``resume`` rebuilds progress from.  Returns the number of rows
        written.
        """
        rows = list(rows)
        if not rows:
            return 0

        def body(conn: sqlite3.Connection) -> int:
            for row in rows:
                feasible = bool(row.feasible)
                metrics = [getattr(row, name) if feasible else None
                           for name in CELL_METRICS]
                cand_index = getattr(row, "index", None)
                if isinstance(cand_index, int) and cand_index < 0:
                    cand_index = None  # hand-built rows have no identity
                conn.execute(
                    "INSERT INTO cells (run_id, kind, workload,"
                    " dataflow_id, batch, num_pes, rf_bytes_per_pe,"
                    " objective_id, feasible, energy_per_op, delay_per_op,"
                    " edp_per_op, dram_reads_per_op, dram_writes_per_op,"
                    " dram_accesses_per_op, array_h, array_w,"
                    " buffer_bytes, area, cand_index, space_fp) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?,"
                    " ?, ?, ?, ?, ?, ?)",
                    (run_id, kind, row.workload,
                     self._dataflow_id(conn, row.dataflow), row.batch,
                     row.num_pes, row.rf_bytes_per_pe,
                     self._objective_id(conn, row.objective),
                     1 if feasible else 0, *metrics,
                     getattr(row, "array_h", None),
                     getattr(row, "array_w", None),
                     getattr(row, "buffer_bytes", None),
                     getattr(row, "area", None),
                     cand_index, space_fp))
            return len(rows)
        return self._write_txn(body)

    _CELL_COLUMNS = (
        "cell_id", "run_id", "kind", "workload", "dataflow", "batch",
        "num_pes", "rf_bytes_per_pe", "objective", "feasible",
        *CELL_METRICS, "array_h", "array_w", "buffer_bytes", "area",
        "cand_index", "space_fp", "commit_sha",
    )

    def query_cells(self, *, workload: Optional[str] = None,
                    dataflow: Optional[str] = None,
                    batch: Optional[int] = None,
                    num_pes: Optional[int] = None,
                    rf_bytes_per_pe: Optional[int] = None,
                    objective: Optional[str] = None,
                    feasible: Optional[bool] = None,
                    kind: Optional[str] = None,
                    run_id: Optional[int] = None,
                    commit: Optional[str] = None,
                    limit: Optional[int] = None) -> List[Dict]:
        """Filtered cell rows as plain dicts, in recording order.

        Every filter is an exact match on its column; ``commit``
        matches the *recording run's* commit SHA.  Metric values come
        back as the exact IEEE doubles that were recorded.
        """
        where, args = [], []
        filters = (("c.workload", workload), ("d.name", dataflow),
                   ("c.batch", batch), ("c.num_pes", num_pes),
                   ("c.rf_bytes_per_pe", rf_bytes_per_pe),
                   ("o.name", objective), ("c.kind", kind),
                   ("c.run_id", run_id), ("r.commit_sha", commit))
        for column, value in filters:
            if value is not None:
                where.append(f"{column}=?")
                args.append(value)
        if feasible is not None:
            where.append("c.feasible=?")
            args.append(1 if feasible else 0)
        sql = (
            "SELECT c.cell_id, c.run_id, c.kind, c.workload, d.name,"
            " c.batch, c.num_pes, c.rf_bytes_per_pe, o.name, c.feasible,"
            " c.energy_per_op, c.delay_per_op, c.edp_per_op,"
            " c.dram_reads_per_op, c.dram_writes_per_op,"
            " c.dram_accesses_per_op, c.array_h, c.array_w,"
            " c.buffer_bytes, c.area, c.cand_index, c.space_fp,"
            " r.commit_sha "
            "FROM cells c"
            " JOIN dataflows d ON d.dataflow_id = c.dataflow_id"
            " JOIN objectives o ON o.objective_id = c.objective_id"
            " JOIN runs r ON r.run_id = c.run_id")
        if where:
            sql += " WHERE " + " AND ".join(where)
        sql += " ORDER BY c.cell_id"
        if limit is not None:
            sql += " LIMIT ?"
            args.append(int(limit))
        out = []
        for values in self._reader().execute(sql, tuple(args)):
            entry = dict(zip(self._CELL_COLUMNS, values))
            entry["feasible"] = bool(entry["feasible"])
            out.append(entry)
        return out

    def cell_count(self) -> int:
        """Number of recorded result cells across all runs."""
        return self._reader().execute(
            "SELECT COUNT(*) FROM cells").fetchone()[0]

    # -- exploration checkpoints ----------------------------------------

    def checkpoint_exploration(self, space_fp: str, run_id: int,
                               total: int, done: int,
                               space_json: Optional[str] = None) -> None:
        """Upsert a streamed exploration's progress checkpoint.

        One row per space fingerprint: ``total`` candidates planned,
        ``done`` recorded so far, and (optionally) the canonical space
        description as JSON for later introspection.  Re-checkpointing
        the same fingerprint -- a later chunk, or a resumed run --
        updates progress in place and keeps the original
        ``started_at``.
        """
        now = _utc_now()

        def body(conn: sqlite3.Connection) -> None:
            conn.execute(
                "INSERT INTO explorations (space_fp, run_id, total, done,"
                " space_json, started_at, updated_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(space_fp) DO UPDATE SET run_id=excluded.run_id,"
                " total=excluded.total, done=excluded.done,"
                " space_json=COALESCE(excluded.space_json, space_json),"
                " updated_at=excluded.updated_at",
                (space_fp, run_id, int(total), int(done), space_json,
                 now, now))
        self._write_txn(body)

    def exploration(self, space_fp: str) -> Optional[Dict]:
        """The checkpoint row for one space fingerprint (None if absent).

        Keys: ``space_fp``, ``run_id``, ``total``, ``done``,
        ``space_json``, ``started_at``, ``updated_at``.
        """
        row = self._reader().execute(
            "SELECT space_fp, run_id, total, done, space_json,"
            " started_at, updated_at FROM explorations WHERE space_fp=?",
            (space_fp,)).fetchone()
        if row is None:
            return None
        return dict(zip(("space_fp", "run_id", "total", "done",
                         "space_json", "started_at", "updated_at"), row))

    def exploration_cells(self, space_fp: str) -> List[Dict]:
        """The recorded candidates of one exploration, deduplicated.

        Returns :meth:`query_cells`-shaped dicts for every cell tagged
        with ``space_fp`` that carries a ``cand_index``, one per index
        (the latest write wins when an interrupted chunk double-wrote),
        ordered by candidate index.  This is what ``resume`` feeds back
        into the incremental frontier.
        """
        sql = (
            "SELECT c.cell_id, c.run_id, c.kind, c.workload, d.name,"
            " c.batch, c.num_pes, c.rf_bytes_per_pe, o.name, c.feasible,"
            " c.energy_per_op, c.delay_per_op, c.edp_per_op,"
            " c.dram_reads_per_op, c.dram_writes_per_op,"
            " c.dram_accesses_per_op, c.array_h, c.array_w,"
            " c.buffer_bytes, c.area, c.cand_index, c.space_fp,"
            " r.commit_sha "
            "FROM cells c"
            " JOIN dataflows d ON d.dataflow_id = c.dataflow_id"
            " JOIN objectives o ON o.objective_id = c.objective_id"
            " JOIN runs r ON r.run_id = c.run_id"
            " WHERE c.space_fp=? AND c.cand_index IS NOT NULL"
            " ORDER BY c.cell_id")
        by_index: Dict[int, Dict] = {}
        for values in self._reader().execute(sql, (space_fp,)):
            entry = dict(zip(self._CELL_COLUMNS, values))
            entry["feasible"] = bool(entry["feasible"])
            by_index[entry["cand_index"]] = entry
        return [by_index[index] for index in sorted(by_index)]

    # -- diffing --------------------------------------------------------

    #: Columns identifying one cell across runs (everything but the
    #: metrics, the run link and the rowid).
    _IDENTITY = ("kind", "workload", "dataflow", "batch", "num_pes",
                 "rf_bytes_per_pe", "objective", "array_h", "array_w",
                 "buffer_bytes", "area")

    def _cells_by_identity(self, run_id: int) -> Dict[Tuple, Dict]:
        cells = {}
        for row in self.query_cells(run_id=run_id):
            identity = tuple(row[name] for name in self._IDENTITY)
            cells[identity] = row  # duplicates: the latest write wins
        return cells

    def diff_runs(self, run_a: int, run_b: int) -> DiffReport:
        """Compare two runs cell by cell (exact float equality).

        Cells match on their full identity (workload, dataflow, batch,
        hardware columns, objective); matched cells whose recorded
        metrics differ at all -- these are IEEE doubles, so any delta
        is a real behavioral change, not rounding -- land in
        ``changed``.
        """
        a_cells = self._cells_by_identity(run_a)
        b_cells = self._cells_by_identity(run_b)
        changed: List[CellDelta] = []
        identical = 0
        compared = ("feasible",) + CELL_METRICS
        for identity in a_cells.keys() & b_cells.keys():
            a_row, b_row = a_cells[identity], b_cells[identity]
            deltas = {name: (a_row[name], b_row[name])
                      for name in compared
                      if a_row[name] != b_row[name]}
            if deltas:
                changed.append(CellDelta(
                    identity=dict(zip(self._IDENTITY, identity)),
                    metrics=deltas))
            else:
                identical += 1
        def identities(keys):
            return tuple(dict(zip(self._IDENTITY, key))
                         for key in sorted(
                             keys, key=lambda k: tuple(map(str, k))))
        changed.sort(key=lambda d: tuple(map(str, d.identity.values())))
        return DiffReport(
            run_a=self.run(run_a), run_b=self.run(run_b),
            matched=identical + len(changed), identical=identical,
            changed=tuple(changed),
            only_a=identities(a_cells.keys() - b_cells.keys()),
            only_b=identities(b_cells.keys() - a_cells.keys()))

    def diff_commits(self, ref_a: str, ref_b: str) -> DiffReport:
        """Diff the latest recorded runs of two git refs.

        Refs resolve through ``git rev-parse`` (so ``HEAD`` and short
        SHAs work).  When both refs name the *same* commit and it has
        two or more recorded runs, the latest two are compared -- the
        ``repro diff HEAD HEAD`` round-trip check; with a single run it
        is compared against itself (trivially clean).
        """
        sha_a, sha_b = resolve_commit(ref_a), resolve_commit(ref_b)
        runs_a = self.runs(commit=sha_a)
        runs_b = self.runs(commit=sha_b)
        if not runs_a:
            raise ValueError(
                f"no recorded run for {ref_a!r} ({sha_a[:12]}) in "
                f"{self.path}")
        if not runs_b:
            raise ValueError(
                f"no recorded run for {ref_b!r} ({sha_b[:12]}) in "
                f"{self.path}")
        run_b = runs_b[0].run_id
        if sha_a == sha_b and len(runs_a) > 1:
            run_a, run_b = runs_a[1].run_id, runs_a[0].run_id
        else:
            run_a = runs_a[0].run_id
        return self.diff_runs(run_a, run_b)


def open_store(path: "str | Path | ExperimentStore") -> ExperimentStore:
    """Coerce a path (or pass through a store instance) to a store.

    The one-liner behind every ``store=`` argument: strings and paths
    open (creating/migrating as needed), instances pass through.
    """
    if isinstance(path, ExperimentStore):
        return path
    return ExperimentStore(path)
