"""The store-backed warm cache tier.

:class:`StoreTierCache` slots an :class:`~repro.store.db.ExperimentStore`
underneath the engine's in-memory LRU: lookups fall through LRU -> store
-> miss, and every computed evaluation is written through to the store,
so a *second* recorded run of the same sweep rescores nothing even in a
fresh process.  This replaces the old flat-pickle disk tier with a
queryable one -- the same rows that answer warm lookups are the rows
``repro query`` reads.

The engine is oblivious: it calls ``cache.get``/``cache.put`` exactly
as before, which is the point of the refactor -- the persistence path
changed under every layer without any layer changing its calls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.engine.cache import (
    MISSING,
    CacheKey,
    CacheStats,
    EvaluationCache,
)
from repro.store.db import ExperimentStore

if TYPE_CHECKING:  # pragma: no cover - only used as a type
    from repro.energy.model import LayerEvaluation


class StoreTierCache(EvaluationCache):
    """A bounded LRU backed by an experiment store's evaluation table.

    ``get`` promotes store hits into the LRU (counted separately as
    :attr:`~repro.engine.cache.CacheStats.store_hits`); ``put`` writes
    through, tagging rows with the active run when one is recording.
    The store is borrowed, not owned -- closing is the session's job.
    """

    def __init__(self, store: ExperimentStore,
                 max_entries: Optional[int] = None) -> None:
        super().__init__(max_entries=max_entries)
        self.store = store
        self._store_hits = 0
        #: Run id stamped onto written evaluations (None outside a
        #: recorded run); set by the owning Session.
        self.run_id: Optional[int] = None

    def get(self, key: CacheKey):
        """LRU hit, else store hit (promoted), else :data:`MISSING`."""
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return self._data[key]
        value = self.store.get_evaluation(key)
        with self._lock:
            if value is MISSING:
                self._misses += 1
                return MISSING
            self._store_hits += 1
            self._put_locked(key, value)
            return value

    def put(self, key: CacheKey,
            value: Optional["LayerEvaluation"]) -> None:
        """Admit to the LRU and write through to the store."""
        super().put(key, value)
        self.store.put_evaluations([(key, value)], run_id=self.run_id)

    def clear(self) -> None:
        """Drop the LRU tier and counters (the store keeps its rows)."""
        super().clear()
        with self._lock:
            self._store_hits = 0

    @property
    def stats(self) -> CacheStats:
        """Counters split by tier: LRU ``hits`` vs ``store_hits``."""
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              size=len(self._data),
                              evictions=self._evictions,
                              store_hits=self._store_hits)
