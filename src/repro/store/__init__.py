"""The experiment store: SQLite system of record for evaluation results.

Public surface:

* :class:`~repro.store.db.ExperimentStore` -- the normalized WAL-mode
  database (runs, cells, hardware points, dataflows, objectives, layer
  evaluations) with commit/BENCH provenance and schema migrations.
* :class:`~repro.store.tier.StoreTierCache` -- the engine cache whose
  warm tier is the store's evaluation table.
* :class:`~repro.store.db.StoreFormatError` -- raised for corrupt,
  foreign, or newer-than-this-build store files.
* :func:`~repro.store.db.default_store_path` / :data:`STORE_ENV` -- the
  ``REPRO_STORE`` environment fallback, mirroring ``REPRO_CACHE``.

See ``docs/EXPERIMENT_STORE.md`` for the schema diagram and the query
cookbook.
"""

from repro.store.db import (
    CELL_METRICS,
    SCHEMA_VERSION,
    STORE_ENV,
    STORE_FORMAT,
    CellDelta,
    DiffReport,
    ExperimentStore,
    RunRecord,
    StoreFormatError,
    current_commit,
    default_store_path,
    hardware_fingerprint,
    open_store,
    resolve_commit,
)
from repro.store.tier import StoreTierCache

__all__ = [
    "CELL_METRICS",
    "SCHEMA_VERSION",
    "STORE_ENV",
    "STORE_FORMAT",
    "CellDelta",
    "DiffReport",
    "ExperimentStore",
    "RunRecord",
    "StoreFormatError",
    "StoreTierCache",
    "current_commit",
    "default_store_path",
    "hardware_fingerprint",
    "open_store",
    "resolve_commit",
]
