"""Eyeriss reproduction: energy-efficient dataflow analysis for CNN accelerators.

This package reproduces "Eyeriss: A Spatial Architecture for Energy-Efficient
Dataflow for Convolutional Neural Networks" (Chen, Emer, Sze; ISCA 2016).

Top-level re-exports cover the public API used by the examples and benchmarks:

* :mod:`repro.nn` -- CNN layer shapes and reference workloads (AlexNet).
* :mod:`repro.arch` -- the spatial-architecture hardware model (Table IV
  energy costs, Fig. 7a area curve, Eq. (2) storage allocation).
* :mod:`repro.mapping` -- the analysis framework: reuse splits and the
  Eq. (3)/(4) energy formulas, plus the per-dataflow mapping optimizer.
* :mod:`repro.dataflows` -- the six dataflow models (RS, WS, OSA, OSB, OSC,
  NLR).
* :mod:`repro.energy` -- energy/EDP accounting and breakdown records.
* :mod:`repro.sim` -- a functional simulator that executes the RS dataflow
  on real tensors and verifies it against a numpy reference.
* :mod:`repro.analysis` -- drivers that regenerate every figure and table of
  the paper's evaluation.
* :mod:`repro.engine` -- the shared evaluation engine: explicit caching
  plus optional thread/process parallel fan-out under all of the above.
* :mod:`repro.api` -- the unified session facade: ``Session`` owns the
  engine/cache/pools, ``Scenario`` describes a typed evaluation grid,
  ``session.evaluate``/``session.stream`` answer it as a ``ResultSet``.
* :mod:`repro.registry` -- pluggable ``@register_network`` /
  ``@register_dataflow`` / ``@register_objective`` /
  ``@register_design_space`` registries every front door (CLI, service,
  facade, figure suites) resolves through.
* :mod:`repro.dse` -- hardware design-space exploration:
  ``DesignSpace`` sweeps PE-array geometry x RF x buffer capacity
  (optionally under the paper's equal-area budget) and
  ``session.explore`` reduces it to a ``ParetoSet``.
"""

from repro.api import (
    Result,
    ResultSet,
    Scenario,
    Session,
    default_session,
)
from repro.arch.energy_costs import EnergyCosts
from repro.arch.hardware import HardwareConfig
from repro.dataflows.registry import DATAFLOWS, get_dataflow
from repro.dse import DesignSpace, ParetoSet
from repro.energy.model import evaluate_layer, evaluate_network
from repro.engine.core import (
    EngineConfig,
    EvaluationEngine,
    default_engine,
)
from repro.mapping.optimizer import optimize_mapping
from repro.nn.layer import LayerShape
from repro.nn.networks import alexnet
from repro.registry import (
    register_dataflow,
    register_design_space,
    register_network,
    register_objective,
)

__all__ = [
    "EnergyCosts",
    "HardwareConfig",
    "DATAFLOWS",
    "get_dataflow",
    "evaluate_layer",
    "evaluate_network",
    "EngineConfig",
    "EvaluationEngine",
    "default_engine",
    "optimize_mapping",
    "LayerShape",
    "alexnet",
    "DesignSpace",
    "ParetoSet",
    "Result",
    "ResultSet",
    "Scenario",
    "Session",
    "default_session",
    "register_dataflow",
    "register_design_space",
    "register_network",
    "register_objective",
]

__version__ = "1.0.0"
