"""Deterministic fault injection: the chaos layer behind the hardening.

A service meant to survive heavy traffic has to treat its failure
paths as first-class code -- reachable on demand, tested in CI, and
bounded by explicit retry/degradation policy rather than by luck.
This module is the switchboard that makes every degraded path
*deliberately* reachable:

* **Injection points** are named sites in production code (the
  :data:`INJECTION_POINTS` catalogue) that ask :func:`fire` whether a
  planned fault should trigger right now.  Disarmed -- the default --
  every site is a single ``is None`` check, so the production hot path
  pays nothing.
* A :class:`FaultPlan` arms a set of points with deterministic
  (``count``/``start``) or seeded-probabilistic (``probability``)
  firing rules.  Plans parse from the ``REPRO_FAULTS`` environment
  variable (so worker processes and subprocess servers arm themselves
  on import) or arm programmatically via ``Session(faults=...)`` /
  :func:`arm` / the :func:`injected` context manager.
* :class:`FaultStats` counts what actually happened -- injections per
  point plus every *recovery* the hardened layers performed (pool
  rebuilds, chunk retries, kernel and serial degradations, flush
  errors survived, store write retries, connection drops) -- in the
  style of :class:`~repro.engine.cache.CacheStats`.  The counters are
  process-wide and always live, so genuine faults count even with no
  plan armed; the ``metrics`` verb surfaces them.

The injection-point catalogue (see docs/RESILIENCE.md for the
per-point recovery contract):

======================  ================================================
point                   fires inside
======================  ================================================
pool.worker_crash       a process-pool worker (hard ``os._exit``), so
                        the parent sees ``BrokenProcessPool``
pool.chunk_slow         a worker chunk (sleeps ``CHUNK_SLOW_S``), for
                        deadline/soak testing
kernel.vector_error     the vectorized mapping-search kernel, forcing
                        the vector -> scalar degradation
cache.flush_io_error    the cache snapshot writer (``OSError``)
store.write_io_error    the experiment store's write transaction
                        (``sqlite3.OperationalError``-shaped)
netserve.conn_drop      TCP connection accept (the server drops the
                        client immediately)
======================  ================================================

``REPRO_FAULTS`` grammar (entries comma-separated)::

    REPRO_FAULTS="pool.worker_crash=1,kernel.vector_error=2@3,seed=7"
    REPRO_FAULTS="netserve.conn_drop~0.05,seed=42"

``point=count`` fires on the first ``count`` hits; ``point=count@N``
starts at the Nth hit (1-based); ``point~p`` fires each hit with
probability ``p`` drawn from a per-point RNG seeded by ``seed`` (so a
chaos run is exactly reproducible from its seed).
"""

from __future__ import annotations

import contextlib
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple, Union

#: The catalogue of named injection sites wired into production code.
INJECTION_POINTS = (
    "pool.worker_crash",
    "pool.chunk_slow",
    "kernel.vector_error",
    "cache.flush_io_error",
    "store.write_io_error",
    "netserve.conn_drop",
)

#: Environment variable carrying a fault-plan spec (see module doc).
FAULTS_ENV = "REPRO_FAULTS"

#: Sleep injected by an armed ``pool.chunk_slow`` firing, seconds.
CHUNK_SLOW_S = 0.25

#: Retry/backoff policy shared by every hardened layer: capped
#: exponential backoff with full jitter.  Small enough that tests and
#: the chaos driver recover in well under a second.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0

#: The recovery counters (beyond per-point injections) that
#: :func:`record` accepts; kept explicit so a typo'd counter name is a
#: loud error, not a silently new key.
RECOVERY_COUNTERS = (
    "pool_rebuilds",
    "chunk_retries",
    "kernel_degradations",
    "serial_degradations",
    "flush_errors",
    "store_write_retries",
    "conn_drops",
    "deadline_timeouts",
)


class InjectedFault(RuntimeError):
    """The default exception raised by a fired :func:`maybe_raise` site."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault: {point}")
        self.point = point


@dataclass(frozen=True)
class FaultRule:
    """The firing rule of one injection point inside a plan.

    Exactly one of the two modes is active: deterministic
    (``count``/``start``: fire on hits ``start .. start+count-1``,
    1-based) or probabilistic (``probability``: each hit fires with
    probability ``p`` from the plan-seeded per-point RNG).
    """

    point: str
    count: int = 1
    start: int = 1
    probability: Optional[float] = None

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            known = ", ".join(INJECTION_POINTS)
            raise ValueError(
                f"unknown injection point {self.point!r}; known: {known}")
        if self.probability is not None:
            if not 0.0 < self.probability <= 1.0:
                raise ValueError(
                    f"probability must be in (0, 1], got {self.probability}")
        elif self.count < 1 or self.start < 1:
            raise ValueError(
                f"count and start must be >= 1, got "
                f"count={self.count} start={self.start}")

    def spec(self) -> str:
        """The rule as one ``REPRO_FAULTS`` entry."""
        if self.probability is not None:
            return f"{self.point}~{self.probability}"
        if self.start != 1:
            return f"{self.point}={self.count}@{self.start}"
        return f"{self.point}={self.count}"


class FaultPlan:
    """A seeded, thread-safe set of armed fault rules.

    Each point keeps its own hit counter and (for probabilistic rules)
    its own ``random.Random`` seeded from ``seed`` xor the point name,
    so two chaos runs with the same plan fire identically regardless
    of how other points interleave.
    """

    def __init__(self, rules: Iterable[FaultRule] = (),
                 seed: int = 0) -> None:
        self.seed = int(seed)
        self.rules: Dict[str, FaultRule] = {}
        for rule in rules:
            if rule.point in self.rules:
                raise ValueError(
                    f"duplicate rule for injection point {rule.point!r}")
            self.rules[rule.point] = rule
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {point: 0 for point in self.rules}
        self._rngs: Dict[str, random.Random] = {
            point: random.Random(f"{self.seed}:{point}")
            for point, rule in self.rules.items()
            if rule.probability is not None}

    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str, seed: Optional[int] = None) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS``-grammar spec string into a plan.

        Entries are comma-separated; ``seed=N`` entries set the plan
        seed (an explicit ``seed`` argument wins).  Whitespace around
        entries is ignored; an empty spec is an empty (but armed) plan.
        """
        rules = []
        spec_seed = 0
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            if entry.startswith("seed="):
                try:
                    spec_seed = int(entry[5:])
                except ValueError:
                    raise ValueError(
                        f"cannot parse fault-plan seed {entry!r}") from None
                continue
            if "~" in entry:
                point, _, prob = entry.partition("~")
                try:
                    rules.append(FaultRule(point.strip(),
                                           probability=float(prob)))
                except ValueError as exc:
                    raise ValueError(
                        f"cannot parse fault rule {entry!r}: {exc}") from None
                continue
            point, sep, tail = entry.partition("=")
            if not sep:
                raise ValueError(
                    f"cannot parse fault rule {entry!r}; expected "
                    f"point=count[@start], point~probability or seed=N")
            count, _, start = tail.partition("@")
            try:
                rules.append(FaultRule(point.strip(), count=int(count),
                                       start=int(start) if start else 1))
            except ValueError as exc:
                raise ValueError(
                    f"cannot parse fault rule {entry!r}: {exc}") from None
        return cls(rules, seed=seed if seed is not None else spec_seed)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULTS`` (None when unset/empty)."""
        raw = os.environ.get(FAULTS_ENV, "").strip()
        return cls.from_spec(raw) if raw else None

    def to_spec(self) -> str:
        """The plan as a ``REPRO_FAULTS`` spec (round-trips parsing)."""
        parts = [rule.spec() for rule in self.rules.values()]
        parts.append(f"seed={self.seed}")
        return ",".join(parts)

    # ------------------------------------------------------------------

    def should_fire(self, point: str) -> bool:
        """Whether this hit of ``point`` fires (advances the counter)."""
        rule = self.rules.get(point)
        if rule is None:
            return False
        with self._lock:
            self._hits[point] += 1
            hit = self._hits[point]
            if rule.probability is not None:
                return self._rngs[point].random() < rule.probability
            return rule.start <= hit < rule.start + rule.count

    def hits(self, point: str) -> int:
        """How many times ``point`` has been evaluated under this plan."""
        with self._lock:
            return self._hits.get(point, 0)


# ----------------------------------------------------------------------
# The process-wide armed plan and fault statistics.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FaultStats:
    """Point-in-time injection/recovery counters (CacheStats-style).

    ``injected`` maps injection points to how many times they fired;
    the remaining counters are *recoveries* the hardened layers
    performed -- they tick for genuine faults too, with no plan armed.
    """

    injected: Dict[str, int] = field(default_factory=dict)
    pool_rebuilds: int = 0
    chunk_retries: int = 0
    kernel_degradations: int = 0
    serial_degradations: int = 0
    flush_errors: int = 0
    store_write_retries: int = 0
    conn_drops: int = 0
    deadline_timeouts: int = 0

    @property
    def total_injected(self) -> int:
        """Total fired injections across every point."""
        return sum(self.injected.values())

    def to_dict(self) -> Dict:
        """The JSON-safe form the ``metrics`` verb reports."""
        return {
            "injected": dict(sorted(self.injected.items())),
            **{name: getattr(self, name) for name in RECOVERY_COUNTERS},
        }


_lock = threading.Lock()
_active: Optional[FaultPlan] = None
_injected: Dict[str, int] = {}
_recoveries: Dict[str, int] = {name: 0 for name in RECOVERY_COUNTERS}

#: Patchable sleeper so tests and the chaos driver can collapse
#: backoff waits to zero without monkeypatching ``time`` globally.
_sleep = time.sleep


def arm(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` as the process-wide armed plan.

    Returns the previously armed plan so callers (``Session(faults=)``)
    can restore it on close.  ``arm(None)`` disarms.
    """
    global _active
    with _lock:
        previous, _active = _active, plan
        return previous


def disarm() -> None:
    """Remove any armed plan (injection points become no-ops again)."""
    arm(None)


@contextlib.contextmanager
def injected(plan: "Union[FaultPlan, str]"):
    """Temporarily arm a plan (or spec string); restores on exit.

    The test/tool-side convenience mirroring ``Session(faults=...)``::

        with faults.injected("cache.flush_io_error=1"):
            ...
    """
    if isinstance(plan, str):
        plan = FaultPlan.from_spec(plan)
    previous = arm(plan)
    try:
        yield plan
    finally:
        arm(previous)


def active() -> Optional[FaultPlan]:
    """The currently armed plan, or None."""
    return _active


def fire(point: str) -> bool:
    """Whether the armed plan fires ``point`` on this hit.

    The disarmed fast path is a single attribute load and ``None``
    check -- the zero-overhead contract every production call site
    relies on.  A firing is counted into :func:`stats`.
    """
    plan = _active
    if plan is None:
        return False
    if not plan.should_fire(point):
        return False
    with _lock:
        _injected[point] = _injected.get(point, 0) + 1
    return True


def maybe_raise(point: str, exc_type=InjectedFault) -> None:
    """Raise ``exc_type`` if the armed plan fires ``point``.

    ``exc_type`` is called with the standard injected-fault message
    (``InjectedFault`` keeps the point attribute too), so a site can
    inject the exact exception shape its recovery path handles --
    ``OSError`` for flush I/O, ``sqlite3.OperationalError`` for store
    writes.
    """
    if fire(point):
        if exc_type is InjectedFault:
            raise InjectedFault(point)
        raise exc_type(f"injected fault: {point}")


def record(counter: str, amount: int = 1) -> None:
    """Count one (or ``amount``) recovery events (see
    :data:`RECOVERY_COUNTERS`)."""
    if counter not in _recoveries:
        known = ", ".join(RECOVERY_COUNTERS)
        raise ValueError(f"unknown recovery counter {counter!r}; "
                         f"known: {known}")
    with _lock:
        _recoveries[counter] += amount


def stats() -> FaultStats:
    """A snapshot of the process-wide injection/recovery counters."""
    with _lock:
        return FaultStats(injected=dict(_injected),
                          **dict(_recoveries))


def reset_stats() -> None:
    """Zero the counters (tests and the chaos driver call this)."""
    with _lock:
        _injected.clear()
        for name in _recoveries:
            _recoveries[name] = 0


def backoff_delay(attempt: int, rng: Optional[random.Random] = None,
                  base: float = BACKOFF_BASE_S,
                  cap: float = BACKOFF_CAP_S) -> float:
    """The capped-exponential-with-full-jitter delay for ``attempt``.

    ``attempt`` is 1-based (the first retry).  Full jitter draws
    uniformly from ``(0, min(cap, base * 2**(attempt-1))]`` -- the
    standard policy that keeps a thundering herd of retriers from
    resynchronizing.  ``rng`` defaults to the module RNG; chaos runs
    pass a seeded one for reproducible schedules.
    """
    if attempt < 1:
        raise ValueError(f"attempt is 1-based, got {attempt}")
    span = min(cap, base * (2.0 ** (attempt - 1)))
    draw = (rng or random).random()
    return span * max(draw, 0.05)


def sleep_backoff(attempt: int, rng: Optional[random.Random] = None) -> None:
    """Sleep one :func:`backoff_delay` (patchable via ``_sleep``)."""
    _sleep(backoff_delay(attempt, rng=rng))


# Arm from the environment at import time: worker processes (spawn
# start method) and subprocess servers re-import this module with
# REPRO_FAULTS in their environment, which is how a chaos plan reaches
# every process of a run without explicit plumbing.
_env_plan = FaultPlan.from_env()
if _env_plan is not None:
    arm(_env_plan)
del _env_plan
