"""Access tracing for the functional simulator.

Counts word-level accesses per (hierarchy level, data kind).  The counts
are *events observed while executing the dataflow*, so the tests can check
qualitative invariants the paper relies on (e.g. in CONV layers the RF
sees orders of magnitude more traffic than DRAM, Fig. 10).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.arch.energy_costs import EnergyCosts, MemoryLevel


class DataKind(enum.Enum):
    """The three data types whose movement the paper accounts."""

    IFMAP = "ifmap"
    FILTER = "filter"
    PSUM = "psum"


@dataclass
class AccessTrace:
    """Word-access counters keyed by (level, data kind)."""

    reads: Dict[Tuple[MemoryLevel, DataKind], int] = field(
        default_factory=lambda: defaultdict(int))
    writes: Dict[Tuple[MemoryLevel, DataKind], int] = field(
        default_factory=lambda: defaultdict(int))
    macs: int = 0

    # ------------------------------------------------------------------

    def read(self, level: MemoryLevel, kind: DataKind, words: int = 1) -> None:
        """Record ``words`` read at one level of the hierarchy."""
        if words < 0:
            raise ValueError("cannot record a negative access count")
        self.reads[(level, kind)] += words

    def write(self, level: MemoryLevel, kind: DataKind, words: int = 1) -> None:
        """Record ``words`` written at one level of the hierarchy."""
        if words < 0:
            raise ValueError("cannot record a negative access count")
        self.writes[(level, kind)] += words

    def mac(self, count: int = 1) -> None:
        """Record executed MAC operations."""
        self.macs += count

    # ------------------------------------------------------------------

    def level_total(self, level: MemoryLevel) -> int:
        """All reads+writes at one level across data kinds."""
        total = 0
        for (lvl, _), v in self.reads.items():
            if lvl is level:
                total += v
        for (lvl, _), v in self.writes.items():
            if lvl is level:
                total += v
        return total

    def kind_total(self, kind: DataKind) -> int:
        """All reads+writes of one data kind across levels."""
        total = 0
        for (_, k), v in self.reads.items():
            if k is kind:
                total += v
        for (_, k), v in self.writes.items():
            if k is kind:
                total += v
        return total

    def energy(self, costs: EnergyCosts) -> float:
        """Observed data-movement + compute energy (Table IV weights)."""
        total = float(self.macs) * costs.alu
        for level in MemoryLevel.storage_levels():
            total += self.level_total(level) * costs.cost(level)
        return total

    def merged(self, other: "AccessTrace") -> "AccessTrace":
        """A new trace combining two traces' counts."""
        result = AccessTrace()
        for src in (self, other):
            for key, v in src.reads.items():
                result.reads[key] += v
            for key, v in src.writes.items():
                result.writes[key] += v
            result.macs += src.macs
        return result

    def summary(self) -> str:
        """Multi-line human-readable access summary."""
        lines = [f"MACs: {self.macs:,}"]
        for level in MemoryLevel.storage_levels():
            lines.append(f"{level.value:>7}: {self.level_total(level):,} accesses")
        return "\n".join(lines)
