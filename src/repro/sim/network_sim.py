"""End-to-end network simulation on the RS accelerator.

Runs a whole :class:`~repro.nn.network.Network` -- CONV (including
grouped), ReLU, POOL and FC ops -- through the functional RS simulator,
accumulating a per-op access trace, and verifies the final output against
the network's numpy reference forward pass.  This is the full inference
pipeline a deployment of the accelerator would execute (Section III-A's
layer stack), exercising POOL support (Section V-D) alongside CONV/FC.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

import numpy as np

from repro.arch.energy_costs import EnergyCosts, MemoryLevel
from repro.arch.hardware import HardwareConfig
from repro.nn.layer import LayerShape
from repro.nn.network import FC, Conv, Network, Pool, ReLU, pad_planes
from repro.nn.reference import relu_reference
from repro.sim.pool import simulate_pool_layer
from repro.sim.simulator import simulate_layer
from repro.sim.trace import AccessTrace


@dataclass
class NetworkSimulationResult:
    """Output tensor plus per-op access traces for a full network run."""

    network_name: str
    output: np.ndarray
    traces: Dict[str, AccessTrace]

    def total_trace(self) -> AccessTrace:
        """Access counts summed across every simulated layer."""
        total = AccessTrace()
        for trace in self.traces.values():
            total = total.merged(trace)
        return total

    def total_energy(self, costs: EnergyCosts) -> float:
        """Total normalized energy of the simulated network."""
        return self.total_trace().energy(costs)

    def energy_by_op(self, costs: EnergyCosts) -> Dict[str, float]:
        """Energy split by operation type (MACs vs data movement)."""
        return {name: trace.energy(costs)
                for name, trace in self.traces.items()}


def _simulate_grouped_conv(layer: LayerShape, groups: int,
                           hw: HardwareConfig, x: np.ndarray,
                           weights: np.ndarray, bias: np.ndarray
                           ) -> Tuple[np.ndarray, AccessTrace]:
    """Run a (possibly grouped) CONV through the RS simulator."""
    trace = AccessTrace()
    if groups == 1:
        out, report = simulate_layer(layer, hw, x, weights, bias)
        return out, report.trace
    m_per = layer.M // groups
    c_per = layer.C  # LayerShape already holds the per-group channels
    group_layer = replace(layer, M=m_per)
    outs = []
    for g in range(groups):
        out, report = simulate_layer(
            group_layer, hw,
            x[:, g * c_per:(g + 1) * c_per],
            weights[g * m_per:(g + 1) * m_per],
            bias[g * m_per:(g + 1) * m_per],
        )
        outs.append(out)
        trace = trace.merged(report.trace)
    return np.concatenate(outs, axis=1), trace


def simulate_network(network: Network, hw: HardwareConfig,
                     x: np.ndarray, params) -> NetworkSimulationResult:
    """Execute every op of the network on the simulated accelerator."""
    traces: Dict[str, AccessTrace] = {}
    for resolved in network.resolved:
        op = resolved.op
        if isinstance(op, Conv):
            x = pad_planes(x, op.padding)
            weights, bias = params[op.name]
            x, trace = _simulate_grouped_conv(resolved.layer, op.groups,
                                              hw, x, weights, bias)
            traces[op.name] = trace
        elif isinstance(op, Pool):
            x, trace = simulate_pool_layer(x, op.window, op.stride)
            traces[op.name] = trace
        elif isinstance(op, ReLU):
            # ACT layers are computationally trivial (Section III-B);
            # they run in the PE datapath with no extra data movement.
            x = relu_reference(x)
        elif isinstance(op, FC):
            weights, bias = params[op.name]
            flat = x.reshape(x.shape[0], resolved.layer.C,
                             resolved.layer.R, resolved.layer.R)
            out, report = simulate_layer(resolved.layer, hw, flat,
                                         weights, bias)
            traces[op.name] = report.trace
            x = out
    return NetworkSimulationResult(network_name=network.name, output=x,
                                   traces=traces)


def verify_network(network: Network, hw: HardwareConfig, seed: int = 0
                   ) -> NetworkSimulationResult:
    """Simulate the network on random integer tensors and check it
    against the reference forward pass; raises on any mismatch."""
    params = network.random_parameters(seed=seed, integer=True)
    x = network.random_input(seed=seed, integer=True)
    result = simulate_network(network, hw, x, params)
    expected = network.reference_forward(x, params)
    if not np.array_equal(result.output, expected):
        raise AssertionError(
            f"{network.name}: simulated output diverges from the "
            f"reference forward pass"
        )
    return result
