"""The 1-D convolution primitive executed inside a PE (Section V-A, Fig. 5).

A primitive convolves one row of filter weights with one row of ifmap
pixels and produces one row of psums: the filter row stays stationary in
the RF while the ifmap row slides through a window, which is exactly the
sliding-window processing of Fig. 5.  The primitive is the unit the
logical PE sets and the folding plan schedule.
"""

from __future__ import annotations

import numpy as np

from repro.arch.energy_costs import MemoryLevel
from repro.sim.trace import AccessTrace, DataKind


def run_primitive(filter_row: np.ndarray, ifmap_row: np.ndarray,
                  out_cols: int, stride: int = 1, col_offset: int = 0,
                  trace: AccessTrace | None = None) -> np.ndarray:
    """Execute one 1-D convolution primitive.

    Parameters
    ----------
    filter_row:
        The R stationary weights.
    ifmap_row:
        The full ifmap row (H pixels); the window slides over it.
    out_cols:
        Number of output positions to produce (the psum-row length the
        strip covers horizontally).
    stride:
        Convolution stride U.
    col_offset:
        First output position (used when a strip starts mid-row; the RS
        strips of this reproduction always cover full rows horizontally,
        but the primitive supports offsets for generality and tests).
    trace:
        Optional access trace; when given, every RF access and MAC is
        recorded (filter read + ifmap read + psum accumulate per MAC).

    Returns
    -------
    The psum row of length ``out_cols``.
    """
    r = filter_row.shape[0]
    needed = (col_offset + out_cols - 1) * stride + r
    if ifmap_row.shape[0] < needed:
        raise ValueError(
            f"ifmap row of {ifmap_row.shape[0]} pixels too short for "
            f"{out_cols} outputs at stride {stride} (needs {needed})"
        )
    # Sliding-window dot products (Fig. 5), vectorized: correlate yields
    # the dot product at every window start; stride selects the outputs.
    full = np.correlate(ifmap_row[:needed], filter_row, mode="valid")
    psums = full[col_offset * stride::stride][:out_cols].copy()
    if trace is not None:
        macs = out_cols * r
        trace.mac(macs)
        trace.read(MemoryLevel.RF, DataKind.FILTER, macs)
        trace.read(MemoryLevel.RF, DataKind.IFMAP, macs)
        # Accumulation inside the primitive: each psum is written once and
        # read-modify-written for the remaining R-1 taps.
        trace.write(MemoryLevel.RF, DataKind.PSUM, macs)
        trace.read(MemoryLevel.RF, DataKind.PSUM, out_cols * (r - 1))
    return psums


def primitive_mac_count(out_cols: int, r: int) -> int:
    """MACs one primitive performs: out_cols * R."""
    return out_cols * r
