"""Functional simulator for the weight-stationary baseline (Section VI-A).

Executes the WS schedule exactly as the paper's implementation describes:
R x R weights of one (filter, channel) plane are pinned on an R x R block
of PEs; every ifmap pixel of that channel is broadcast to the block;
psums accumulate spatially across the block and across the ``c_f``
channel blocks in flight, and the running (N, m_f, E, E) psum set lives
in the global buffer until all C/c_f channel passes complete -- the
commitment that makes WS infeasible when the buffer cannot hold the live
psums (Fig. 11a).

Like the RS simulator, it is verified bit-exactly against the Eq. (1)
reference, and its trace provides an executable cross-check of the WS
analytical model (weights read once from DRAM, one RF read per MAC,
heavy ifmap re-fetch across filter groups).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.arch.energy_costs import MemoryLevel
from repro.arch.hardware import HardwareConfig
from repro.nn.layer import LayerShape
from repro.sim.trace import AccessTrace, DataKind


@dataclass(frozen=True)
class WsSchedule:
    """One WS run configuration: filters/channels concurrently in flight."""

    m_f: int
    c_f: int

    def __post_init__(self) -> None:
        if self.m_f < 1 or self.c_f < 1:
            raise ValueError("m_f and c_f must be positive")


class WeightStationarySimulator:
    """Executes one CONV/FC layer under the WS dataflow."""

    def __init__(self, layer: LayerShape, hw: HardwareConfig,
                 schedule: WsSchedule) -> None:
        r2 = layer.R ** 2
        blocks = schedule.m_f * schedule.c_f
        if blocks * r2 > hw.num_pes:
            raise ValueError(
                f"{blocks} blocks of {r2} PEs exceed the {hw.num_pes}-PE "
                f"array"
            )
        if layer.M % schedule.m_f or layer.C % schedule.c_f:
            raise ValueError("m_f / c_f must divide M / C")
        # The WS commitment: all live psums must fit the buffer.
        live_psums = layer.N * schedule.m_f * layer.E ** 2
        if live_psums > hw.buffer_words:
            raise ValueError(
                f"live psums ({live_psums} words) exceed the buffer "
                f"({hw.buffer_words} words): WS cannot operate "
                f"(the Fig. 11a failure)"
            )
        self.layer = layer
        self.hw = hw
        self.schedule = schedule

    def run(self, ifmap: np.ndarray, weights: np.ndarray,
            bias: np.ndarray | None = None
            ) -> Tuple[np.ndarray, AccessTrace]:
        """Execute the layer; returns the ofmap and its access trace."""
        layer, sched = self.layer, self.schedule
        n, m, c = layer.N, layer.M, layer.C
        e, r, u = layer.E, layer.R, layer.U
        trace = AccessTrace()

        out = np.zeros((n, m, e, e), dtype=np.result_type(ifmap, weights))
        for m0 in range(0, m, sched.m_f):
            filters = range(m0, m0 + sched.m_f)
            # Psums for the in-flight filters live in the buffer across
            # all channel passes (written once on first touch).
            trace.write(MemoryLevel.BUFFER, DataKind.PSUM,
                        n * sched.m_f * e * e)
            for c0 in range(0, c, sched.c_f):
                if c0 > 0:
                    # Buffer read-modify-write per channel pass.
                    trace.read(MemoryLevel.BUFFER, DataKind.PSUM,
                               n * sched.m_f * e * e)
                    trace.write(MemoryLevel.BUFFER, DataKind.PSUM,
                                n * sched.m_f * e * e)
                for ci in range(c0, c0 + sched.c_f):
                    # Pin the channel's weights of every in-flight filter:
                    # DRAM -> RF once each, held for all N*E^2 uses.
                    trace.read(MemoryLevel.DRAM, DataKind.FILTER,
                               sched.m_f * r * r)
                    trace.write(MemoryLevel.RF, DataKind.FILTER,
                                sched.m_f * r * r)
                    for img in range(n):
                        self._broadcast_channel(ifmap, weights, out, img,
                                                ci, filters, trace)
        if bias is not None:
            out += bias.reshape(1, m, 1, 1)
        trace.write(MemoryLevel.DRAM, DataKind.PSUM, out.size)
        return out, trace

    def _broadcast_channel(self, ifmap: np.ndarray, weights: np.ndarray,
                           out: np.ndarray, img: int, ci: int,
                           filters, trace: AccessTrace) -> None:
        """Stream one image's channel plane to all in-flight blocks.

        A single broadcast of each ifmap pixel reaches the R x R block of
        every in-flight filter (one DRAM read, m_f array deliveries); WS
        does not buffer ifmaps across filter groups -- the buffer is full
        of psums -- so the stream is fed straight from DRAM.
        """
        layer = self.layer
        e, r, u = layer.E, layer.R, layer.U
        src = ifmap[img, ci]
        trace.read(MemoryLevel.DRAM, DataKind.IFMAP, src.size)
        for mi in filters:
            trace.read(MemoryLevel.ARRAY, DataKind.IFMAP, src.size)
            # The systolic block computes the full 2-D correlation; each
            # of the E^2*R^2 MACs reads its pinned weight from the RF and
            # forwards its psum to a neighbor (spatial accumulation).
            result = _correlate2d(src, weights[mi, ci], u)
            macs = e * e * r * r
            trace.mac(macs)
            trace.read(MemoryLevel.RF, DataKind.FILTER, macs)
            trace.read(MemoryLevel.ARRAY, DataKind.PSUM,
                       e * e * (r * r - 1))
            out[img, mi] += result


def _correlate2d(plane: np.ndarray, kernel: np.ndarray,
                 stride: int) -> np.ndarray:
    """Valid-mode strided 2-D correlation (one channel, one filter)."""
    h = plane.shape[0]
    r = kernel.shape[0]
    e = (h - r + stride) // stride
    out = np.zeros((e, e), dtype=np.result_type(plane, kernel))
    for x in range(e):
        for y in range(e):
            window = plane[stride * x:stride * x + r,
                           stride * y:stride * y + r]
            out[x, y] = np.sum(window * kernel)
    return out


def simulate_ws_layer(layer: LayerShape, hw: HardwareConfig,
                      ifmap: np.ndarray, weights: np.ndarray,
                      bias: np.ndarray | None = None,
                      schedule: WsSchedule | None = None
                      ) -> Tuple[np.ndarray, AccessTrace]:
    """Convenience wrapper: pick a schedule from the WS mapping optimizer
    (or the largest feasible block split) and simulate."""
    if schedule is None:
        from repro.dataflows.weight_stationary import WeightStationary
        from repro.mapping.optimizer import optimize_mapping

        result = optimize_mapping(WeightStationary(), layer, hw)
        if result.best is None:
            raise RuntimeError(
                f"WS cannot operate on {layer.name} with {hw.describe()}"
            )
        schedule = WsSchedule(m_f=result.best.params["m_f"],
                              c_f=result.best.params["c_f"])
    simulator = WeightStationarySimulator(layer, hw, schedule)
    return simulator.run(ifmap, weights, bias)
