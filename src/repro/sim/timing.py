"""Throughput model (Section VI-B).

The paper assumes "accelerator throughput is proportional to the number
of active PEs" and argues that prefetching/double-buffering hide data
movement latency, so bandwidth rarely limits CNN acceleration.  This
module makes that argument checkable: given a mapping, it estimates

* compute cycles -- each active PE retires one MAC per cycle;
* DRAM transfer cycles -- total DRAM words over the link bandwidth;
* buffer transfer cycles -- buffer words over the on-chip port width;

and combines them under double buffering (transfers overlap compute; the
machine stalls only when a transfer stream is longer than the compute it
hides behind).  The benchmarks use it to show RS CONV layers stay
compute-bound at modest bandwidths, and where the FC layers become
DRAM-bound (their Fig. 10 DRAM-dominated energy has a latency twin).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapping.mapping import Mapping


@dataclass(frozen=True)
class TimingEstimate:
    """Cycle-level estimate of one layer under one mapping."""

    compute_cycles: float
    dram_cycles: float
    buffer_cycles: float
    macs: int
    active_pes: int

    @property
    def total_cycles(self) -> float:
        """Double buffering: compute and transfers overlap; the longest
        stream determines the elapsed time."""
        return max(self.compute_cycles, self.dram_cycles,
                   self.buffer_cycles)

    @property
    def stall_cycles(self) -> float:
        """Cycles the array waits on data delivery."""
        return self.total_cycles - self.compute_cycles

    @property
    def compute_bound(self) -> bool:
        """True when computation, not bandwidth, bounds the run."""
        return self.compute_cycles >= max(self.dram_cycles,
                                          self.buffer_cycles)

    @property
    def macs_per_cycle(self) -> float:
        """Achieved MACs per cycle under the stall model."""
        return self.macs / self.total_cycles

    @property
    def utilization(self) -> float:
        """Achieved throughput over the active-PE peak."""
        return self.macs_per_cycle / self.active_pes

    def throughput_ops(self, clock_hz: float) -> float:
        """Absolute throughput in MAC/s at a given clock."""
        return self.macs_per_cycle * clock_hz


@dataclass(frozen=True)
class TimingModel:
    """Bandwidth parameters of the accelerator's data paths.

    ``dram_words_per_cycle`` -- off-chip link width (the chip pairs a
    200 MHz core with a 16-bit-word DRAM interface; 1.0 is a good
    default).  ``buffer_words_per_cycle`` -- global-buffer port width
    toward the array (the chip's buffer feeds multiple NoCs; default 4).
    """

    dram_words_per_cycle: float = 1.0
    buffer_words_per_cycle: float = 4.0

    def __post_init__(self) -> None:
        if self.dram_words_per_cycle <= 0 or self.buffer_words_per_cycle <= 0:
            raise ValueError("bandwidths must be positive")

    def estimate(self, mapping: Mapping) -> TimingEstimate:
        """Estimate timing of one layer executed under ``mapping``."""
        compute = mapping.macs / mapping.active_pes
        dram_words = mapping.dram_reads + mapping.dram_writes
        counts = mapping.access_counts()
        return TimingEstimate(
            compute_cycles=compute,
            dram_cycles=dram_words / self.dram_words_per_cycle,
            buffer_cycles=counts.buffer / self.buffer_words_per_cycle,
            macs=mapping.macs,
            active_pes=mapping.active_pes,
        )

    def minimum_dram_bandwidth(self, mapping: Mapping) -> float:
        """Words/cycle needed for the layer to stay DRAM-compute-bound."""
        compute = mapping.macs / mapping.active_pes
        dram_words = mapping.dram_reads + mapping.dram_writes
        return dram_words / compute
