"""POOL-layer support (Section V-D).

The RS dataflow processes POOL layers "by swapping the MAC computation
with a MAX comparison function in the ALU of each PE ... and running each
fmap plane separately".  This module mirrors the 1-D primitive / vertical
reduction structure of the CONV simulator with max() in place of
multiply-accumulate, so the same machinery demonstrably covers pooling.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.arch.energy_costs import MemoryLevel
from repro.sim.trace import AccessTrace, DataKind


def _pool_primitive(ifmap_row: np.ndarray, window: int, stride: int,
                    out_cols: int, trace: AccessTrace | None) -> np.ndarray:
    """1-D max primitive: the MAX analogue of the Fig. 5 sliding window."""
    out = np.full(out_cols, -np.inf, dtype=float)
    for x in range(out_cols):
        start = x * stride
        out[x] = ifmap_row[start:start + window].max()
    if trace is not None:
        ops = out_cols * window
        trace.mac(ops)  # MAX comparisons occupy the ALU like MACs
        trace.read(MemoryLevel.RF, DataKind.IFMAP, ops)
    return out


def simulate_pool_layer(ifmap: np.ndarray, window: int, stride: int,
                        trace: AccessTrace | None = None
                        ) -> Tuple[np.ndarray, AccessTrace]:
    """Max-pool every plane of (N, C, H, H) through the RS structure.

    Each plane runs as its own set (N = M = C = 1, Section V-D): rows are
    processed by 1-D max primitives and the per-row results reduce
    vertically with MAX, mirroring the psum accumulation path.
    """
    if trace is None:
        trace = AccessTrace()
    n, c, h, h2 = ifmap.shape
    if h != h2:
        raise ValueError("pooling expects square planes")
    if (h - window) % stride != 0:
        raise ValueError(
            f"pool window {window} / stride {stride} do not tile H={h}"
        )
    e = (h - window + stride) // stride
    out = np.empty((n, c, e, e), dtype=float)
    for img in range(n):
        for ch in range(c):
            plane = ifmap[img, ch]
            for j in range(e):  # output row (set column)
                acc = np.full(e, -np.inf)
                for i in range(window):  # primitive rows
                    row = plane[i + stride * j, :]
                    partial = _pool_primitive(row, window, stride, e, trace)
                    acc = np.maximum(acc, partial)
                    if i > 0:
                        trace.read(MemoryLevel.ARRAY, DataKind.PSUM, e)
                out[img, ch, j, :] = acc
    trace.write(MemoryLevel.DRAM, DataKind.PSUM, out.size)
    return out, trace
