"""Functional simulator of the row-stationary dataflow (Section V).

Executes a CONV/FC layer through the full RS machinery -- logical sets,
folding plan, processing passes, 1-D primitives -- on concrete tensors,
while tracing every data access through the four-level hierarchy:

* DRAM is touched once per unique input word (cold fetch) and once per
  ofmap word (final write-back);
* the global buffer stages every row entering the array each pass and
  holds cross-pass psum partials;
* array transfers follow the Fig. 6 patterns: filter rows multicast
  horizontally, ifmap rows multicast diagonally, psum rows hop vertically;
* RF accesses are recorded per MAC inside the primitives.

The produced ofmap is bit-identical (for integer tensors) to the direct
convolution of Eq. (1), which is the simulator's correctness contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.arch.energy_costs import EnergyCosts, MemoryLevel
from repro.arch.hardware import HardwareConfig
from repro.mapping.folding import FoldingPlan, plan_from_mapping_params
from repro.mapping.optimizer import optimize_mapping
from repro.nn.layer import LayerShape
from repro.sim.primitive import run_primitive
from repro.sim.trace import AccessTrace, DataKind


@dataclass
class SimulationReport:
    """Everything the simulator observed while executing one layer."""

    layer: LayerShape
    plan: FoldingPlan
    trace: AccessTrace
    passes_executed: int

    def energy(self, costs: EnergyCosts) -> float:
        """Total normalized energy of the simulated execution."""
        return self.trace.energy(costs)

    @property
    def dram_accesses(self) -> int:
        """Total DRAM word accesses of the execution."""
        return self.trace.level_total(MemoryLevel.DRAM)

    @property
    def rf_accesses(self) -> int:
        """Total register-file word accesses of the execution."""
        return self.trace.level_total(MemoryLevel.RF)


class RowStationarySimulator:
    """Executes one layer under a folding plan, tracing data movement."""

    def __init__(self, layer: LayerShape, plan: FoldingPlan) -> None:
        if plan.layer != layer:
            raise ValueError("folding plan was built for a different layer")
        self.layer = layer
        self.plan = plan

    # ------------------------------------------------------------------

    def run(self, ifmap: np.ndarray, weights: np.ndarray,
            bias: np.ndarray | None = None
            ) -> Tuple[np.ndarray, SimulationReport]:
        """Execute the layer; returns (ofmap, report)."""
        layer = self.layer
        self._check_shapes(ifmap, weights, bias)

        trace = AccessTrace()
        ofmap = np.zeros((layer.N, layer.M, layer.E, layer.E),
                         dtype=np.result_type(ifmap, weights))
        # Which (n, m, ofmap-row) rows already hold a partial in the
        # buffer (accumulated across channel chunks).
        partial_rows: Set[Tuple[int, int, int]] = set()
        # Cold-fetch tracking for DRAM reads.
        fetched_filters: Set[Tuple[int, int]] = set()
        fetched_ifmap_rows: Set[Tuple[int, int, int]] = set()

        passes = 0
        for processing_pass in self.plan.passes():
            passes += 1
            delivered_filters: Set[Tuple[int, int]] = set()
            delivered_rows: Set[Tuple[int, int, int]] = set()
            for s in processing_pass.slices:
                self._deliver_filter(s, trace, fetched_filters,
                                     delivered_filters)
                self._deliver_ifmap_rows(s, trace, fetched_ifmap_rows,
                                         delivered_rows)
                self._compute_slice(s, ifmap, weights, ofmap, partial_rows,
                                    trace)

        # Final write-back of ofmaps to DRAM (the only DRAM writes).
        if bias is not None:
            ofmap += bias.reshape(1, layer.M, 1, 1)
        trace.write(MemoryLevel.DRAM, DataKind.PSUM, ofmap.size)

        report = SimulationReport(layer=layer, plan=self.plan, trace=trace,
                                  passes_executed=passes)
        return ofmap, report

    # ------------------------------------------------------------------
    # Data delivery (Fig. 6 movement patterns).
    # ------------------------------------------------------------------

    def _deliver_filter(self, s, trace: AccessTrace,
                        fetched: Set[Tuple[int, int]],
                        delivered: Set[Tuple[int, int]]) -> None:
        """Fetch and multicast the R filter rows of slice (m, c)."""
        layer = self.layer
        key = (s.m, s.c)
        words = layer.R * layer.R
        if key not in fetched:
            fetched.add(key)
            trace.read(MemoryLevel.DRAM, DataKind.FILTER, words)
            trace.write(MemoryLevel.BUFFER, DataKind.FILTER, words)
        if key not in delivered:
            delivered.add(key)
            trace.read(MemoryLevel.BUFFER, DataKind.FILTER, words)
            # Horizontal multicast: each filter row reaches the slice's
            # `width` column PEs.
            trace.read(MemoryLevel.ARRAY, DataKind.FILTER,
                       words * s.width)
            trace.write(MemoryLevel.RF, DataKind.FILTER, words)

    def _deliver_ifmap_rows(self, s, trace: AccessTrace,
                            fetched: Set[Tuple[int, int, int]],
                            delivered: Set[Tuple[int, int, int]]) -> None:
        """Fetch and diagonally multicast the ifmap rows a slice needs."""
        layer = self.layer
        first_row = s.col_start * layer.U
        last_row = (s.col_start + s.width - 1) * layer.U + layer.R - 1
        for row in range(first_row, last_row + 1):
            key = (s.n, s.c, row)
            if key not in fetched:
                fetched.add(key)
                trace.read(MemoryLevel.DRAM, DataKind.IFMAP, layer.H)
                trace.write(MemoryLevel.BUFFER, DataKind.IFMAP, layer.H)
            if key not in delivered:
                delivered.add(key)
                trace.read(MemoryLevel.BUFFER, DataKind.IFMAP, layer.H)
                # Diagonal multicast: the row reaches every PE (i, j) of
                # the slice with i + U*j == row.
                destinations = self._diagonal_destinations(s, row)
                trace.read(MemoryLevel.ARRAY, DataKind.IFMAP,
                           layer.H * destinations)
                trace.write(MemoryLevel.RF, DataKind.IFMAP,
                            layer.H * destinations)

    def _diagonal_destinations(self, s, row: int) -> int:
        layer = self.layer
        count = 0
        for j in range(s.col_start, s.col_start + s.width):
            i = row - layer.U * j
            if 0 <= i < layer.R:
                count += 1
        return count

    # ------------------------------------------------------------------
    # Computation and psum movement.
    # ------------------------------------------------------------------

    def _compute_slice(self, s, ifmap: np.ndarray, weights: np.ndarray,
                       ofmap: np.ndarray,
                       partial_rows: Set[Tuple[int, int, int]],
                       trace: AccessTrace) -> None:
        layer = self.layer
        for j in range(s.col_start, s.col_start + s.width):
            # Column j of the set computes ofmap row j: R primitives whose
            # psum rows accumulate vertically down the column.
            psum_row = np.zeros(layer.E,
                                dtype=np.result_type(ifmap, weights))
            for i in range(layer.R):
                ifmap_row = ifmap[s.n, s.c, i + layer.U * j, :]
                filter_row = weights[s.m, s.c, i, :]
                contribution = run_primitive(
                    filter_row, ifmap_row, out_cols=layer.E,
                    stride=layer.U, trace=trace)
                psum_row += contribution
                if i > 0:
                    # Vertical hop: the partial row moves one PE down.
                    trace.read(MemoryLevel.ARRAY, DataKind.PSUM, layer.E)

            key = (s.n, s.m, j)
            if key in partial_rows:
                # Accumulate with the buffered partial from earlier
                # channel chunks (read-modify-write in the buffer).
                trace.read(MemoryLevel.BUFFER, DataKind.PSUM, layer.E)
                trace.write(MemoryLevel.BUFFER, DataKind.PSUM, layer.E)
            else:
                partial_rows.add(key)
                trace.write(MemoryLevel.BUFFER, DataKind.PSUM, layer.E)
            ofmap[s.n, s.m, j, :] += psum_row

    # ------------------------------------------------------------------

    def _check_shapes(self, ifmap: np.ndarray, weights: np.ndarray,
                      bias: np.ndarray | None) -> None:
        layer = self.layer
        expected_if = (layer.N, layer.C, layer.H, layer.H)
        expected_w = (layer.M, layer.C, layer.R, layer.R)
        if ifmap.shape != expected_if:
            raise ValueError(f"ifmap shape {ifmap.shape} != {expected_if}")
        if weights.shape != expected_w:
            raise ValueError(f"weights shape {weights.shape} != {expected_w}")
        if bias is not None and bias.shape != (layer.M,):
            raise ValueError(f"bias shape {bias.shape} != ({layer.M},)")


def simulate_layer(layer: LayerShape, hw: HardwareConfig,
                   ifmap: np.ndarray, weights: np.ndarray,
                   bias: np.ndarray | None = None,
                   plan: Optional[FoldingPlan] = None
                   ) -> Tuple[np.ndarray, SimulationReport]:
    """Convenience wrapper: optimize an RS mapping, fold, and simulate."""
    if plan is None:
        from repro.dataflows.row_stationary import RowStationary

        result = optimize_mapping(RowStationary(), layer, hw)
        if result.best is None:
            raise RuntimeError(
                f"no feasible RS mapping for {layer.name} on {hw.describe()}"
            )
        plan = plan_from_mapping_params(layer, hw, result.best.params)
    simulator = RowStationarySimulator(layer, plan)
    return simulator.run(ifmap, weights, bias)
