"""Functional simulator for the output-stationary MOC-SOP baseline (OSC).

Executes the OSC schedule of Sections IV-B/VI-A: the array holds one
output pixel per PE for ``m_a`` ofmap channels and ``n_a`` images in
flight; each pixel's psum stays pinned in its PE's RF for the entire
C*R^2-deep accumulation (the defining OS property), while the ifmap
window streams in (broadcast across the m_a channel PEs) and each weight
delivery is shared across the n_a in-flight images.

Verified bit-exactly against Eq. (1); the trace provides the executable
counterpart of the OSC analytical model: psums never touch the buffer,
weights enjoy no reuse beyond the batch in flight, and the convolutional
window overlap is re-fetched (the paper's "does not exploit convolutional
reuse of ifmaps on-chip").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.arch.energy_costs import MemoryLevel
from repro.arch.hardware import HardwareConfig
from repro.nn.layer import LayerShape
from repro.sim.trace import AccessTrace, DataKind


@dataclass(frozen=True)
class OscSchedule:
    """Channels (m_a) and images (n_a) concurrently in flight."""

    m_a: int
    n_a: int

    def __post_init__(self) -> None:
        if self.m_a < 1 or self.n_a < 1:
            raise ValueError("m_a and n_a must be positive")


class OutputStationarySimulator:
    """Executes one CONV/FC layer under the OSC (MOC-SOP) dataflow."""

    def __init__(self, layer: LayerShape, hw: HardwareConfig,
                 schedule: OscSchedule) -> None:
        if schedule.m_a * schedule.n_a > hw.num_pes:
            raise ValueError(
                f"{schedule.m_a}x{schedule.n_a} outputs in flight exceed "
                f"the {hw.num_pes}-PE array"
            )
        if layer.M % schedule.m_a or layer.N % schedule.n_a:
            raise ValueError("m_a / n_a must divide M / N")
        self.layer = layer
        self.hw = hw
        self.schedule = schedule

    def run(self, ifmap: np.ndarray, weights: np.ndarray,
            bias: np.ndarray | None = None
            ) -> Tuple[np.ndarray, AccessTrace]:
        """Execute the layer; returns the ofmap and its access trace."""
        layer, sched = self.layer, self.schedule
        n, m, c = layer.N, layer.M, layer.C
        e, r, u = layer.E, layer.R, layer.U
        trace = AccessTrace()
        out = np.zeros((n, m, e, e), dtype=np.result_type(ifmap, weights))

        for m0 in range(0, m, sched.m_a):
            for n0 in range(0, n, sched.n_a):
                for x in range(e):
                    for y in range(e):
                        self._run_pixel(ifmap, weights, out, m0, n0, x, y,
                                        trace)
        if bias is not None:
            out += bias.reshape(1, m, 1, 1)
        trace.write(MemoryLevel.DRAM, DataKind.PSUM, out.size)
        return out, trace

    def _run_pixel(self, ifmap: np.ndarray, weights: np.ndarray,
                   out: np.ndarray, m0: int, n0: int, x: int, y: int,
                   trace: AccessTrace) -> None:
        """One pixel round: m_a x n_a outputs accumulate to completion."""
        layer, sched = self.layer, self.schedule
        c, r, u = layer.C, layer.R, layer.U
        window_words = c * r * r

        # Each in-flight image's C*R^2 window streams from DRAM (the
        # overlap with neighboring pixels' windows is not exploited on
        # chip, Table III) and is broadcast across the m_a channel PEs.
        trace.read(MemoryLevel.DRAM, DataKind.IFMAP,
                   sched.n_a * window_words)
        trace.read(MemoryLevel.ARRAY, DataKind.IFMAP,
                   sched.n_a * window_words * sched.m_a)

        # Weights stream through the buffer once per pixel round; a
        # single delivery feeds the n_a images in flight.
        trace.read(MemoryLevel.BUFFER, DataKind.FILTER,
                   sched.m_a * window_words)
        trace.read(MemoryLevel.ARRAY, DataKind.FILTER,
                   sched.m_a * window_words * sched.n_a)

        windows = [
            ifmap[n0 + i, :, u * x:u * x + r, u * y:u * y + r]
            for i in range(sched.n_a)
        ]
        macs_per_output = window_words
        for mi in range(m0, m0 + sched.m_a):
            kernel = weights[mi]
            for i, window in enumerate(windows):
                # The pinned psum accumulates C*R^2 times in the RF.
                out[n0 + i, mi, x, y] = np.sum(window * kernel)
                trace.mac(macs_per_output)
                trace.write(MemoryLevel.RF, DataKind.PSUM, macs_per_output)
                trace.read(MemoryLevel.RF, DataKind.PSUM,
                           macs_per_output - 1)


def simulate_osc_layer(layer: LayerShape, hw: HardwareConfig,
                       ifmap: np.ndarray, weights: np.ndarray,
                       bias: np.ndarray | None = None,
                       schedule: OscSchedule | None = None
                       ) -> Tuple[np.ndarray, AccessTrace]:
    """Convenience wrapper: take (m_a, n_a) from the OSC mapping
    optimizer and simulate."""
    if schedule is None:
        from repro.dataflows.output_stationary import OutputStationaryC
        from repro.mapping.optimizer import optimize_mapping

        result = optimize_mapping(OutputStationaryC(), layer, hw)
        if result.best is None:
            raise RuntimeError(
                f"no feasible OSC mapping for {layer.name} on "
                f"{hw.describe()}"
            )
        schedule = OscSchedule(m_a=result.best.params["m_a"],
                               n_a=result.best.params["n_a"])
    simulator = OutputStationarySimulator(layer, hw, schedule)
    return simulator.run(ifmap, weights, bias)
