"""Sparsity exploitation (Section V-E).

The Eyeriss architecture "can also exploit sparsity by (1) only performing
data reads and MACs on non-zero values and (2) compressing the data to
reduce data movement".  This module models both mechanisms:

* :func:`zero_gating_savings` -- given real tensors, counts the MACs and
  RF reads a zero-gating PE skips (any MAC with a zero ifmap activation
  is suppressed, the behaviour after a ReLU layer).
* :func:`run_length_encode` / :func:`run_length_decode` -- the RLE-style
  compression used between DRAM and the chip, reducing DRAM word traffic
  for sparse activations.

These bring "additional energy savings on top of the efficient dataflow";
the extension benchmarks quantify that for post-ReLU activation
densities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

#: Run-length field width of the Eyeriss codec: 5-bit run lengths.
MAX_RUN = 31


@dataclass(frozen=True)
class SparsityStats:
    """Savings from zero-gating one layer's computation."""

    total_macs: int
    skipped_macs: int
    total_ifmap_words: int
    zero_ifmap_words: int

    @property
    def mac_savings(self) -> float:
        """Fraction of MACs (and their RF reads) gated off."""
        return self.skipped_macs / self.total_macs if self.total_macs else 0.0

    @property
    def ifmap_density(self) -> float:
        if self.total_ifmap_words == 0:
            return 0.0
        return 1.0 - self.zero_ifmap_words / self.total_ifmap_words


def zero_gating_savings(ifmap: np.ndarray, weights: np.ndarray,
                        stride: int = 1) -> SparsityStats:
    """Count MACs skipped by gating on zero ifmap activations.

    A MAC is skipped when its ifmap operand is exactly zero; the count is
    computed exactly by convolving the ifmap's zero mask with an all-ones
    filter (each window-zero suppresses one MAC per filter).
    """
    n, c, h, _ = ifmap.shape
    m, c_w, r, _ = weights.shape
    if c != c_w:
        raise ValueError("channel mismatch between ifmap and weights")
    e = (h - r + stride) // stride
    zero_mask = (ifmap == 0)
    zeros_per_window = 0
    for x in range(e):
        for y in range(e):
            window = zero_mask[:, :, stride * x:stride * x + r,
                               stride * y:stride * y + r]
            zeros_per_window += int(window.sum())
    total_macs = n * m * c * e * e * r * r
    skipped = zeros_per_window * m  # every filter skips the same zeros
    return SparsityStats(
        total_macs=total_macs,
        skipped_macs=skipped,
        total_ifmap_words=int(ifmap.size),
        zero_ifmap_words=int(zero_mask.sum()),
    )


def run_length_encode(values: np.ndarray) -> List[Tuple[int, int]]:
    """Encode a 1-D integer array as (zero_run, value) pairs.

    Mirrors the Eyeriss RLE: runs of zeros up to :data:`MAX_RUN` are
    folded into the count preceding each non-zero value; a trailing run of
    zeros is encoded with a sentinel value of 0.
    """
    flat = np.asarray(values).ravel()
    encoded: List[Tuple[int, int]] = []
    run = 0
    for v in flat.tolist():
        if v == 0 and run < MAX_RUN:
            run += 1
            continue
        encoded.append((run, int(v)))
        run = 0
    if run:
        encoded.append((run, 0))
    return encoded


def run_length_decode(encoded: List[Tuple[int, int]],
                      length: int) -> np.ndarray:
    """Invert :func:`run_length_encode` back to a 1-D array."""
    out: List[int] = []
    for run, value in encoded:
        if run < 0 or run > MAX_RUN:
            raise ValueError(f"invalid run length {run}")
        out.extend([0] * run)
        if len(out) < length:
            out.append(value)
        elif value != 0:
            raise ValueError("non-zero value beyond declared length")
    # A final (run, 0) pair may pad exactly to length; trailing zeros
    # missing from the stream are implicit.
    if len(out) < length:
        out.extend([0] * (length - len(out)))
    if len(out) != length:
        raise ValueError(
            f"decoded {len(out)} values, expected {length}"
        )
    return np.array(out, dtype=np.int64)


def compressed_words(values: np.ndarray) -> int:
    """Words after RLE compression (each (run, value) pair = one word)."""
    return len(run_length_encode(values))


def compression_ratio(values: np.ndarray) -> float:
    """Uncompressed / compressed word count (>= 1 for sparse data)."""
    compressed = compressed_words(values)
    return values.size / compressed if compressed else float("inf")
