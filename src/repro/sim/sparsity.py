"""Sparsity exploitation (Section V-E).

The Eyeriss architecture "can also exploit sparsity by (1) only performing
data reads and MACs on non-zero values and (2) compressing the data to
reduce data movement".  This module models both mechanisms:

* :func:`zero_gating_savings` -- given real tensors, counts the MACs and
  RF reads a zero-gating PE skips (any MAC with a zero ifmap activation
  is suppressed, the behaviour after a ReLU layer).
* :func:`run_length_encode` / :func:`run_length_decode` -- the RLE-style
  compression used between DRAM and the chip, reducing DRAM word traffic
  for sparse activations.

These bring "additional energy savings on top of the efficient dataflow";
the extension benchmarks quantify that for post-ReLU activation
densities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

#: Run-length field width of the Eyeriss codec: 5-bit run lengths.
MAX_RUN = 31


@dataclass(frozen=True)
class SparsityStats:
    """Savings from zero-gating one layer's computation."""

    total_macs: int
    skipped_macs: int
    total_ifmap_words: int
    zero_ifmap_words: int

    @property
    def mac_savings(self) -> float:
        """Fraction of MACs (and their RF reads) gated off."""
        return self.skipped_macs / self.total_macs if self.total_macs else 0.0

    @property
    def ifmap_density(self) -> float:
        """Fraction of ifmap values that are non-zero."""
        if self.total_ifmap_words == 0:
            return 0.0
        return 1.0 - self.zero_ifmap_words / self.total_ifmap_words


def zero_gating_savings(ifmap: np.ndarray, weights: np.ndarray,
                        stride: int = 1) -> SparsityStats:
    """Count MACs skipped by gating on zero ifmap activations.

    A MAC is skipped when its ifmap operand is exactly zero; the count is
    computed exactly by convolving the ifmap's zero mask with an all-ones
    filter (each window-zero suppresses one MAC per filter).

    The geometry must satisfy Eq. (1) exactly -- ``(H - R)`` divisible
    by the stride -- the same consistency :class:`~repro.nn.layer.
    LayerShape` enforces; a non-tiling stride would silently truncate
    edge windows and undercount both total and skipped MACs.
    """
    n, c, h, _ = ifmap.shape
    m, c_w, r, _ = weights.shape
    if c != c_w:
        raise ValueError("channel mismatch between ifmap and weights")
    if stride < 1:
        raise ValueError(f"stride must be a positive integer, got {stride}")
    if r > h:
        raise ValueError(f"filter size R={r} exceeds ifmap size H={h}")
    if (h - r) % stride:
        raise ValueError(
            f"stride U={stride} does not tile the ifmap: Eq. (1) needs "
            f"H-R={h}-{r}={h - r} divisible by U")
    e = (h - r) // stride + 1
    zero_mask = (ifmap == 0)
    zeros_per_window = 0
    for x in range(e):
        for y in range(e):
            window = zero_mask[:, :, stride * x:stride * x + r,
                               stride * y:stride * y + r]
            zeros_per_window += int(window.sum())
    total_macs = n * m * c * e * e * r * r
    skipped = zeros_per_window * m  # every filter skips the same zeros
    return SparsityStats(
        total_macs=total_macs,
        skipped_macs=skipped,
        total_ifmap_words=int(ifmap.size),
        zero_ifmap_words=int(zero_mask.sum()),
    )


def run_length_encode(values: np.ndarray) -> List[Tuple[int, int]]:
    """Encode a 1-D integer array as (zero_run, value) pairs.

    Mirrors the Eyeriss RLE: runs of zeros up to :data:`MAX_RUN` are
    folded into the count preceding each non-zero value; a trailing run
    of zeros is encoded with a sentinel value of 0.  A run that
    saturates the 5-bit field while more zeros follow is emitted as a
    ``(MAX_RUN, 0)`` pair, which spends its literal slot on the
    32nd zero -- so a gap of ``g`` zeros costs ``g // (MAX_RUN+1)``
    saturated pairs plus the remainder folded into the next value's
    pair.

    Fully vectorized over the non-zero positions; the emitted pairs are
    bit-identical to the original element-by-element encoder.
    """
    flat = np.asarray(values).ravel()
    period = MAX_RUN + 1
    nonzero = np.flatnonzero(flat)
    # Zero-gap in front of each non-zero value (the first gap starts at
    # index 0), split into saturated (MAX_RUN, 0) chunks + a remainder.
    gaps = np.diff(nonzero, prepend=-1) - 1
    chunks = gaps // period
    counts = chunks + 1  # saturated pairs + the value's own pair
    ends = np.cumsum(counts) - 1
    runs = np.full(int(counts.sum()), MAX_RUN, dtype=np.int64)
    vals = np.zeros(runs.size, dtype=np.int64)
    runs[ends] = gaps % period
    vals[ends] = flat[nonzero].astype(np.int64)
    encoded = list(zip(runs.tolist(), vals.tolist()))
    # Trailing zeros: saturated chunks, then a (run, 0) sentinel pair.
    tail = int(flat.size - (nonzero[-1] + 1)) if nonzero.size else flat.size
    tail_chunks, tail_run = divmod(tail, period)
    encoded.extend([(MAX_RUN, 0)] * tail_chunks)
    if tail_run:
        encoded.append((tail_run, 0))
    return encoded


def run_length_decode(encoded: List[Tuple[int, int]],
                      length: int) -> np.ndarray:
    """Invert :func:`run_length_encode` back to a 1-D array.

    The bulk of the stream -- every pair that lands strictly inside the
    declared length -- is reconstructed with one vectorized scatter;
    only the boundary pairs at the very end (whose literal value slot
    may fall exactly on ``length`` and be elided) take the scalar path,
    preserving the original decoder's semantics and error messages
    exactly.
    """
    pairs = np.asarray(encoded, dtype=np.int64).reshape(-1, 2)
    runs, vals = pairs[:, 0], pairs[:, 1]
    # Each pair occupies run zeros + one literal value slot; pairs whose
    # slots all fit within the declared length decode by pure scatter.
    ends = np.cumsum(runs + 1)
    bulk = int(np.searchsorted(ends, length, side="right"))
    invalid = (runs[:bulk] < 0) | (runs[:bulk] > MAX_RUN)
    if invalid.any():
        raise ValueError(
            f"invalid run length {runs[:bulk][invalid][0]}")
    head_len = int(ends[bulk - 1]) if bulk else 0
    head = np.zeros(head_len, dtype=np.int64)
    head[ends[:bulk] - 1] = vals[:bulk]
    # Boundary pairs (at most one in a well-formed stream): scalar walk.
    tail: List[int] = []
    for run, value in encoded[bulk:]:
        if run < 0 or run > MAX_RUN:
            raise ValueError(f"invalid run length {run}")
        tail.extend([0] * run)
        if head_len + len(tail) < length:
            tail.append(value)
        elif value != 0:
            raise ValueError("non-zero value beyond declared length")
    # A final (run, 0) pair may pad exactly to length; trailing zeros
    # missing from the stream are implicit.
    decoded = head_len + len(tail)
    if decoded > length:
        raise ValueError(
            f"decoded {decoded} values, expected {length}"
        )
    return np.concatenate([
        head,
        np.asarray(tail, dtype=np.int64),
        np.zeros(length - decoded, dtype=np.int64),
    ])


def compressed_words(values: np.ndarray) -> int:
    """Words after RLE compression (each (run, value) pair = one word)."""
    return len(run_length_encode(values))


def compression_ratio(values: np.ndarray) -> float:
    """Uncompressed / compressed word count (>= 1 for sparse data)."""
    compressed = compressed_words(values)
    return values.size / compressed if compressed else float("inf")
