"""Functional simulation of the RS dataflow on real tensors (Section V).

The simulator plays the role the fabricated chip plays in the paper: it
executes the row-stationary dataflow exactly as specified -- 1-D row
primitives, horizontal filter reuse, diagonal ifmap reuse, vertical psum
accumulation, two-phase folding -- on concrete numpy tensors, verifies the
result against the direct-convolution reference, and counts every data
access so the analytical model can be sanity-checked against an executable
artifact.
"""

from repro.sim.simulator import RowStationarySimulator, SimulationReport, simulate_layer
from repro.sim.trace import AccessTrace, DataKind
from repro.sim.pool import simulate_pool_layer
from repro.sim.sparsity import SparsityStats, run_length_decode, run_length_encode, zero_gating_savings
from repro.sim.network_sim import NetworkSimulationResult, simulate_network, verify_network
from repro.sim.timing import TimingEstimate, TimingModel
from repro.sim.ws_simulator import WeightStationarySimulator, WsSchedule, simulate_ws_layer
from repro.sim.os_simulator import OscSchedule, OutputStationarySimulator, simulate_osc_layer

__all__ = [
    "RowStationarySimulator",
    "SimulationReport",
    "simulate_layer",
    "AccessTrace",
    "DataKind",
    "simulate_pool_layer",
    "SparsityStats",
    "run_length_decode",
    "run_length_encode",
    "zero_gating_savings",
    "NetworkSimulationResult",
    "simulate_network",
    "verify_network",
    "TimingEstimate",
    "TimingModel",
    "WeightStationarySimulator",
    "WsSchedule",
    "simulate_ws_layer",
    "OscSchedule",
    "OutputStationarySimulator",
    "simulate_osc_layer",
]
