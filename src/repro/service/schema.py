"""Request/response schema of the batch evaluation service.

The service speaks three request verbs, all plain JSON:

* ``batch`` (the default) -- a :class:`BatchRequest` describes a grid
  of evaluation problems, (network | explicit layer list) x dataflows
  x hardware points x objective.  The dispatcher
  (:mod:`repro.service.dispatcher`) expands it into engine-level jobs
  and answers with a :class:`BatchResult`: one :class:`CellResult` per
  grid cell plus the cache traffic the request generated.
* ``dse`` -- a :class:`DseRequest` describes a hardware design-space
  exploration (:mod:`repro.dse`), either by a registered space name or
  by inline grid fields, and is answered with a :class:`DseResult`
  carrying the Pareto front.
* ``query`` -- a :class:`QueryRequest` filters the session's SQLite
  experiment store (:mod:`repro.store`) and is answered with a
  :class:`QueryResult` of recorded cell rows -- the WAL-mode store
  makes this safe while another client's sweep is still recording.

Everything validates eagerly with clear ``ValueError`` messages, so a
malformed spec fails at the service boundary (CLI exit code 2, or an
``error`` line in serve mode) instead of deep inside the optimizer.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.dataflows.registry import DATAFLOWS, get_dataflow
from repro.dse import DesignSpace, ParetoSet
from repro.engine.cache import CacheStats
from repro.nn.layer import LayerShape, LayerType
from repro.registry import (
    get_design_space,
    get_network,
    network_registry,
    objective_registry,
)

_LAYER_FIELDS = ("name", "H", "R", "E", "C", "M", "U", "N", "type",
                 "groups", "dilation")
_REQUEST_FIELDS = ("id", "network", "layers", "batch", "dataflows",
                   "pe_counts", "rf_choices", "objective")


def _positive_ints(values, what: str) -> Tuple[int, ...]:
    if isinstance(values, int) and not isinstance(values, bool):
        values = [values]  # a bare scalar is an obvious one-point grid
    if not isinstance(values, (list, tuple)):
        # Notably rejects strings: iterating "256" would silently turn
        # it into the grid (2, 5, 6).
        raise ValueError(
            f"{what} must be a list of integers, got {values!r}")
    try:
        result = tuple(operator.index(v) for v in values)
    except TypeError:
        raise ValueError(
            f"{what} must be a list of integers, got {values!r}") from None
    if not result or any(v < 1 for v in result):
        raise ValueError(
            f"{what} must be a non-empty list of positive integers, "
            f"got {values!r}")
    return result


def layer_from_dict(data: Dict) -> LayerShape:
    """Build a :class:`LayerShape` from a JSON object.

    ``E`` may be omitted; it is derived from Eq. (1) as
    ``(H - R_eff + U) // U`` with ``R_eff = dilation*(R-1)+1`` (the
    shape validation in ``LayerShape`` still applies, so inconsistent
    explicit values are rejected).  ``groups`` and ``dilation`` default
    to 1, keeping old clients' requests valid unchanged.
    """
    if not isinstance(data, dict):
        raise ValueError(f"each layer must be an object, got {data!r}")
    unknown = set(data) - set(_LAYER_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown layer field(s) {sorted(unknown)}; "
            f"known: {list(_LAYER_FIELDS)}")
    try:
        kind = LayerType(str(data.get("type", "CONV")).upper())
    except ValueError:
        raise ValueError(
            f"unknown layer type {data.get('type')!r}; known: "
            f"{[t.value for t in LayerType]}") from None
    missing = {"name", "H", "R", "C", "M"} - set(data)
    if missing:
        raise ValueError(f"layer is missing field(s) {sorted(missing)}")
    try:
        h, r = int(data["H"]), int(data["R"])
        u = int(data.get("U", 1))
        dilation = int(data.get("dilation", 1))
        r_eff = dilation * (r - 1) + 1
        e = int(data["E"]) if "E" in data else (h - r_eff + u) // u
        return LayerShape(name=str(data["name"]), H=h, R=r, E=e,
                          C=int(data["C"]), M=int(data["M"]), U=u,
                          N=int(data.get("N", 1)), layer_type=kind,
                          groups=int(data.get("groups", 1)),
                          dilation=dilation)
    except TypeError as exc:
        # int(None) and friends: keep wrong-typed wire values at the
        # ValueError level the serve loop converts to an error line.
        raise ValueError(f"malformed layer field: {exc}") from None


def layer_to_dict(layer: LayerShape) -> Dict:
    """The JSON wire form of a :class:`LayerShape`."""
    return {"name": layer.name, "type": layer.layer_type.value,
            "H": layer.H, "R": layer.R, "E": layer.E, "C": layer.C,
            "M": layer.M, "U": layer.U, "N": layer.N,
            "groups": layer.groups, "dilation": layer.dilation}


@dataclass(frozen=True)
class BatchRequest:
    """One grid of evaluation problems, as submitted by a client."""

    request_id: str
    dataflows: Tuple[str, ...]
    pe_counts: Tuple[int, ...] = (256,)
    #: Batch size N applied to a named ``network``; explicit ``layers``
    #: carry their own N and ignore this field.
    batch: int = 16
    network: Optional[str] = None
    layers: Optional[Tuple[LayerShape, ...]] = None
    #: RF bytes/PE per hardware point; None picks each dataflow's
    #: equal-area default (Section VI-B), as the paper's figures do.
    rf_choices: Optional[Tuple[int, ...]] = None
    objective: str = "energy"

    def __post_init__(self) -> None:
        if (self.network is None) == (self.layers is None):
            raise ValueError(
                f"request {self.request_id!r} must set exactly one of "
                f"'network' or 'layers'")
        if self.network is not None and self.network not in network_registry:
            raise ValueError(
                f"unknown network {self.network!r}; known: "
                f"{sorted(network_registry)}")
        if not self.dataflows:
            raise ValueError(
                f"request {self.request_id!r} names no dataflows")
        for name in self.dataflows:
            if name not in DATAFLOWS:
                raise ValueError(
                    f"unknown dataflow {name!r}; known: {list(DATAFLOWS)}")
        try:
            # Canonical spelling, as with dataflow names: the objective
            # is part of the engine cache key, so "EDP" and "edp" must
            # warm the same entries.
            object.__setattr__(self, "objective",
                               objective_registry.canonical(self.objective))
        except KeyError:
            raise ValueError(
                f"unknown objective {self.objective!r}; known: "
                f"{list(objective_registry)}") from None
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")

    # ------------------------------------------------------------------

    @property
    def resolved_layers(self) -> Tuple[LayerShape, ...]:
        """The layer list the request evaluates (network or explicit)."""
        if self.layers is not None:
            return self.layers
        return tuple(get_network(self.network)(self.batch))

    @classmethod
    def from_dict(cls, data: Dict, default_id: str = "req") -> "BatchRequest":
        """Decode a request object, validating fields eagerly."""
        if not isinstance(data, dict):
            raise ValueError(f"a request must be an object, got {data!r}")
        unknown = set(data) - set(_REQUEST_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown request field(s) {sorted(unknown)}; "
                f"known: {list(_REQUEST_FIELDS)}")
        dataflows = data.get("dataflows") or list(DATAFLOWS)
        if isinstance(dataflows, str):
            dataflows = [dataflows]
        try:
            dataflows = tuple(get_dataflow(str(n)).name for n in dataflows)
        except KeyError as exc:
            raise ValueError(str(exc.args[0])) from None
        except TypeError:
            raise ValueError(
                f"'dataflows' must be a list of names, "
                f"got {data.get('dataflows')!r}") from None
        layers = data.get("layers")
        if layers is not None:
            if not isinstance(layers, list) or not layers:
                raise ValueError("'layers' must be a non-empty list")
            layers = tuple(layer_from_dict(entry) for entry in layers)
        rf_choices = data.get("rf_choices")
        if rf_choices is not None:
            rf_choices = _positive_ints(rf_choices, "'rf_choices'")
        try:
            batch = int(data.get("batch", 16))
        except TypeError:
            raise ValueError(
                f"'batch' must be an integer, "
                f"got {data.get('batch')!r}") from None
        return cls(
            request_id=str(data.get("id", default_id)),
            dataflows=dataflows,
            pe_counts=_positive_ints(data.get("pe_counts", (256,)),
                                     "'pe_counts'"),
            batch=batch,
            network=data.get("network"),
            layers=layers,
            rf_choices=rf_choices,
            objective=str(data.get("objective", "energy")),
        )

    def to_dict(self) -> Dict:
        """The JSON wire form of this request."""
        data: Dict = {
            "id": self.request_id,
            "dataflows": list(self.dataflows),
            "pe_counts": list(self.pe_counts),
            "batch": self.batch,
            "objective": self.objective,
        }
        if self.network is not None:
            data["network"] = self.network
        if self.layers is not None:
            data["layers"] = [layer_to_dict(l) for l in self.layers]
        if self.rf_choices is not None:
            data["rf_choices"] = list(self.rf_choices)
        return data


@dataclass(frozen=True)
class CellResult:
    """Aggregate metrics of one (dataflow, hardware) grid cell."""

    dataflow: str
    num_pes: int
    rf_bytes_per_pe: int
    batch: int
    objective: str
    feasible: bool
    energy_per_op: float = float("nan")
    delay_per_op: float = float("nan")
    edp_per_op: float = float("nan")
    dram_accesses_per_op: float = float("nan")

    def to_dict(self) -> Dict:
        """The JSON wire form of this cell (metrics only when feasible)."""
        data: Dict = {
            "dataflow": self.dataflow,
            "pes": self.num_pes,
            "rf_bytes_per_pe": self.rf_bytes_per_pe,
            "batch": self.batch,
            "objective": self.objective,
            "feasible": self.feasible,
        }
        if self.feasible:
            data.update(
                energy_per_op=self.energy_per_op,
                delay_per_op=self.delay_per_op,
                edp_per_op=self.edp_per_op,
                dram_accesses_per_op=self.dram_accesses_per_op,
            )
        return data


@dataclass(frozen=True)
class BatchResult:
    """The service's answer to one :class:`BatchRequest`."""

    request_id: str
    cells: Tuple[CellResult, ...]
    layer_jobs: int
    elapsed_s: float
    cache: CacheStats = field(default_factory=lambda: CacheStats(0, 0, 0))

    @property
    def feasible_cells(self) -> int:
        """Number of grid cells with at least one valid mapping."""
        return sum(1 for cell in self.cells if cell.feasible)

    def to_dict(self) -> Dict:
        """The JSON wire form of this result."""
        return {
            "id": self.request_id,
            "cells": [cell.to_dict() for cell in self.cells],
            "layer_jobs": self.layer_jobs,
            "feasible_cells": self.feasible_cells,
            "elapsed_s": self.elapsed_s,
            "cache": _cache_dict(self.cache),
        }


def _cache_dict(stats: CacheStats) -> Dict:
    """The JSON wire form of cache counters, split by tier."""
    return {
        "hits": stats.hits,
        "store_hits": stats.store_hits,
        "misses": stats.misses,
        "hit_rate": stats.hit_rate,
        "size": stats.size,
        "evictions": stats.evictions,
    }


_DSE_GRID_FIELDS = ("network", "layers", "batch", "dataflows", "pe_counts",
                    "array_shapes", "rf_choices", "glb_choices",
                    "equal_area", "area_budget", "objective", "metrics")
#: Sampling-budget fields: part of the DesignSpace, but meaningful on
#: top of a registered space too, so they never conflict with 'space'.
_DSE_SAMPLING_FIELDS = ("sample", "seed", "sampler")
_DSE_FIELDS = ("id", "verb", "space", "include_dominated", "stream",
               "chunk", *_DSE_SAMPLING_FIELDS, *_DSE_GRID_FIELDS)


def _array_shapes(values) -> Tuple[Tuple[int, int], ...]:
    """Decode the ``array_shapes`` wire field: a list of [h, w] pairs."""
    if not isinstance(values, (list, tuple)):
        raise ValueError(
            f"'array_shapes' must be a list of [height, width] pairs, "
            f"got {values!r}")
    shapes = []
    for entry in values:
        if (not isinstance(entry, (list, tuple)) or len(entry) != 2):
            raise ValueError(
                f"each array shape must be a [height, width] pair, "
                f"got {entry!r}")
        shapes.append((operator.index(entry[0]), operator.index(entry[1])))
    return tuple(shapes)


@dataclass(frozen=True)
class DseRequest:
    """One design-space exploration, as submitted by a client.

    Carries the fully validated :class:`repro.dse.DesignSpace`;
    ``space_name`` remembers a registered-space reference so the
    request round-trips through :meth:`to_dict` unchanged.
    """

    request_id: str
    space: DesignSpace
    space_name: Optional[str] = None
    include_dominated: bool = False
    #: Stream per-candidate/progress lines instead of one result line.
    stream: bool = False
    #: Candidates per streamed evaluation chunk (None: the dse default).
    chunk: Optional[int] = None

    @classmethod
    def from_dict(cls, data: Dict, default_id: str = "dse") -> "DseRequest":
        """Decode a ``{"verb": "dse", ...}`` wire object.

        Either ``space`` names a registered design space, or the inline
        grid fields (``network``/``layers``, ``pe_counts``,
        ``array_shapes``, ``rf_choices``, ``glb_choices``,
        ``equal_area``, ``area_budget``, ...) describe one ad hoc --
        mixing both is rejected, as are unknown fields.  The sampling
        budget (``sample``/``seed``/``sampler``) and the delivery
        options (``stream``/``chunk``) compose with both forms.
        """
        if not isinstance(data, dict):
            raise ValueError(f"a dse request must be an object, got {data!r}")
        unknown = set(data) - set(_DSE_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown dse request field(s) {sorted(unknown)}; "
                f"known: {list(_DSE_FIELDS)}")
        verb = data.get("verb", "dse")
        if verb != "dse":
            raise ValueError(f"not a dse request (verb {verb!r})")
        request_id = str(data.get("id", default_id))
        include_dominated = bool(data.get("include_dominated", False))
        stream = bool(data.get("stream", False))
        try:
            chunk = (operator.index(data["chunk"])
                     if data.get("chunk") is not None else None)
            sampling: Dict = {}
            if data.get("sample") is not None:
                sampling["sample"] = operator.index(data["sample"])
            if "seed" in data:
                sampling["seed"] = operator.index(data["seed"])
            if "sampler" in data:
                sampling["sampler"] = str(data["sampler"])
        except TypeError:
            raise ValueError(
                f"request {request_id!r} has a malformed sampling/chunk "
                f"field (integer expected): {data!r}") from None
        if chunk is not None and chunk < 1:
            raise ValueError(
                f"request {request_id!r}: 'chunk' must be >= 1, "
                f"got {chunk}")
        if "space" in data:
            inline = sorted(set(data) & set(_DSE_GRID_FIELDS))
            if inline:
                raise ValueError(
                    f"request {request_id!r} sets both 'space' and inline "
                    f"grid field(s) {inline}; pick one")
            name = str(data["space"])
            try:
                space = get_design_space(name)
            except KeyError as exc:
                raise ValueError(str(exc.args[0])) from None
            if sampling:
                space = replace(space, **sampling)
            return cls(request_id=request_id, space=space, space_name=name,
                       include_dominated=include_dominated,
                       stream=stream, chunk=chunk)
        if (data.get("network") is None) == (data.get("layers") is None):
            raise ValueError(
                f"request {request_id!r} must set exactly one of "
                f"'network' or 'layers' (or a registered 'space')")
        options: Dict = {}
        if data.get("layers") is not None:
            layers = data["layers"]
            if not isinstance(layers, list) or not layers:
                raise ValueError("'layers' must be a non-empty list")
            options["workload"] = tuple(layer_from_dict(entry)
                                        for entry in layers)
        else:
            options["workload"] = str(data["network"])
        # Wrong-typed wire values (a string where a list belongs, null
        # where an int belongs) surface as TypeError from the coercions
        # below; fold them into ValueError so a malformed request stays
        # a clean error line in serve mode instead of killing the loop.
        try:
            dataflows = data.get("dataflows")
            if dataflows is not None:
                options["dataflows"] = (
                    (dataflows,) if isinstance(dataflows, str)
                    else tuple(str(n) for n in dataflows))
            if "batch" in data:
                options["batch"] = int(data["batch"])
            if "pe_counts" in data:
                options["pe_counts"] = _positive_ints(data["pe_counts"],
                                                      "'pe_counts'")
            if "array_shapes" in data:
                options["array_shapes"] = _array_shapes(
                    data["array_shapes"])
            if "rf_choices" in data:
                options["rf_choices"] = tuple(
                    operator.index(v) for v in data["rf_choices"])
            if "glb_choices" in data:
                options["glb_choices"] = tuple(
                    operator.index(v) for v in data["glb_choices"])
            if "equal_area" in data:
                options["equal_area"] = bool(data["equal_area"])
            if "area_budget" in data and data["area_budget"] is not None:
                options["area_budget"] = float(data["area_budget"])
            if "objective" in data:
                options["objective"] = str(data["objective"])
            if "metrics" in data:
                metrics = data["metrics"]
                options["metrics"] = ((metrics,)
                                      if isinstance(metrics, str)
                                      else tuple(str(m) for m in metrics))
            space = DesignSpace(**options, **sampling)
        except TypeError as exc:
            raise ValueError(
                f"request {request_id!r} has a malformed field: "
                f"{exc}") from None
        return cls(request_id=request_id, space=space,
                   include_dominated=include_dominated,
                   stream=stream, chunk=chunk)

    def to_dict(self) -> Dict:
        """The JSON wire form (a registered space stays by-name)."""
        data: Dict = {"id": self.request_id, "verb": "dse"}
        if self.include_dominated:
            data["include_dominated"] = True
        if self.stream:
            data["stream"] = True
        if self.chunk is not None:
            data["chunk"] = self.chunk
        space = self.space
        if space.sample is not None:
            data["sample"] = space.sample
            data["seed"] = space.seed
            data["sampler"] = space.sampler
        if self.space_name is not None:
            data["space"] = self.space_name
            return data
        if isinstance(space.workload, str):
            data["network"] = space.workload
        else:
            data["layers"] = [layer_to_dict(l) for l in space.workload]
        data.update(
            dataflows=list(space.dataflows), batch=space.batch,
            objective=space.objective, metrics=list(space.metrics))
        if space.pe_counts:
            data["pe_counts"] = list(space.pe_counts)
        if space.array_shapes:
            data["array_shapes"] = [list(s) for s in space.array_shapes]
        data["rf_choices"] = list(space.rf_choices)
        if space.glb_choices is not None:
            data["glb_choices"] = list(space.glb_choices)
        if space.equal_area:
            data["equal_area"] = True
        if space.area_budget is not None:
            data["area_budget"] = space.area_budget
        return data


@dataclass(frozen=True)
class DseResult:
    """The service's answer to one :class:`DseRequest`."""

    request_id: str
    pareto: ParetoSet
    elapsed_s: float
    include_dominated: bool = False
    cache: CacheStats = field(default_factory=lambda: CacheStats(0, 0, 0))

    @property
    def front_size(self) -> int:
        """Number of non-dominated points on the frontier."""
        return len(self.pareto.frontier)

    def to_dict(self) -> Dict:
        """The JSON wire form: frontier rows plus exploration stats.

        ``candidates``/``feasible_candidates`` count what was
        *evaluated* -- for large streamed spaces that can exceed the
        retained rows ``include_dominated=True`` would export.
        """
        return {
            "id": self.request_id,
            "verb": "dse",
            "metrics": list(self.pareto.metrics),
            "front": self.pareto.to_dicts(
                include_dominated=self.include_dominated),
            "front_size": self.front_size,
            "candidates": self.pareto.num_evaluated,
            "feasible_candidates": self.pareto.num_feasible,
            "elapsed_s": self.elapsed_s,
            "cache": _cache_dict(self.cache),
        }


#: The filter fields a query request may carry (exact-match columns of
#: the store's ``cells`` view, plus ``limit``).
_QUERY_FILTER_FIELDS = ("workload", "network", "dataflow", "batch",
                        "num_pes", "rf_bytes_per_pe", "objective",
                        "feasible", "kind", "run_id", "commit", "limit")
_QUERY_FIELDS = ("id", "verb", *_QUERY_FILTER_FIELDS)


@dataclass(frozen=True)
class QueryRequest:
    """One experiment-store query, as submitted by a client.

    ``filters`` hold validated keyword arguments for
    :meth:`repro.store.db.ExperimentStore.query_cells`; every field is
    an exact match on its recorded column.
    """

    request_id: str
    filters: Dict = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Dict,
                  default_id: str = "query") -> "QueryRequest":
        """Decode a ``{"verb": "query", ...}`` wire object.

        ``network`` is accepted as an alias for ``workload`` (matching
        the batch verb's vocabulary); unknown fields are rejected.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"a query request must be an object, got {data!r}")
        unknown = set(data) - set(_QUERY_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown query field(s) {sorted(unknown)}; "
                f"known: {list(_QUERY_FIELDS)}")
        verb = data.get("verb", "query")
        if verb != "query":
            raise ValueError(f"not a query request (verb {verb!r})")
        if "workload" in data and "network" in data:
            raise ValueError(
                "set either 'workload' or its alias 'network', not both")
        filters: Dict = {}
        try:
            for name in ("workload", "dataflow", "objective", "kind",
                         "commit"):
                if data.get(name) is not None:
                    filters[name] = str(data[name])
            if data.get("network") is not None:
                filters["workload"] = str(data["network"])
            for name in ("batch", "num_pes", "rf_bytes_per_pe", "run_id",
                         "limit"):
                if data.get(name) is not None:
                    filters[name] = operator.index(data[name])
            if data.get("feasible") is not None:
                filters["feasible"] = bool(data["feasible"])
        except TypeError:
            raise ValueError(
                f"malformed query field (integer expected): "
                f"{data!r}") from None
        return cls(request_id=str(data.get("id", default_id)),
                   filters=filters)

    def to_dict(self) -> Dict:
        """The JSON wire form of this request."""
        return {"id": self.request_id, "verb": "query", **self.filters}


@dataclass(frozen=True)
class QueryResult:
    """The service's answer to one :class:`QueryRequest`."""

    request_id: str
    rows: Tuple[Dict, ...]
    elapsed_s: float

    def to_dict(self) -> Dict:
        """The JSON wire form: recorded cell rows in recording order."""
        return {
            "id": self.request_id,
            "verb": "query",
            "rows": [dict(row) for row in self.rows],
            "count": len(self.rows),
            "elapsed_s": self.elapsed_s,
        }


def parse_requests(payload) -> List[BatchRequest]:
    """Decode a spec payload: one request object or a list of them."""
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list) or not payload:
        raise ValueError(
            "a batch spec must be a request object or a non-empty list "
            "of request objects")
    return [BatchRequest.from_dict(entry, default_id=f"req-{index}")
            for index, entry in enumerate(payload)]
