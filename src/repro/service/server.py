"""JSON-lines serve loop: the pipe transport of the service protocol.

``repro serve`` (without ``--tcp``) turns the dispatcher into a
long-lived worker a parent process can feed over a pipe:

.. code-block:: text

    $ printf '%s\n' '{"network": "alexnet-conv", "dataflows": ["RS"],
      "pe_counts": [256], "batch": 1}' | repro serve --cache-file c.pkl
    {"id": "req-1", "cells": [...], "cache": {...}, ...}

Since the netserve refactor this loop is a thin transport: every line
is answered by :class:`repro.netserve.core.RequestHandler`, the exact
dispatch path the TCP server (:mod:`repro.netserve.server`) runs, so
the two modes cannot drift.  The pipe is inherently serial -- requests
answer one at a time in input order, and the ``priority`` envelope
field is accepted but has nothing to reorder.

Requests carry an optional ``verb``: the default ``batch`` runs a
:class:`~repro.service.schema.BatchRequest` grid in one response line;
``evaluate`` runs the same grid but streams one ``{"event": "cell"}``
line per completed cell before the final ``{"event": "result"}`` line;
``dse`` runs a design-space exploration
(:class:`~repro.service.schema.DseRequest`, optionally streamed as
``candidate``/``progress``/``result`` lines); ``query`` reads recorded
cells back out of the session's experiment store; ``metrics`` answers
a server-introspection snapshot; and ``shutdown`` answers, then ends
the loop -- the pipe equivalent of draining the TCP server.

Error paths never kill the loop: a malformed JSON line, an unknown
verb, a bad field or an over-limit line (``max_line_bytes``) each
answer with a terminal ``{"event": "error", "id": ..., "error": ...}``
line and the next request is served normally.  Blank lines are ignored
and EOF ends the loop.  So do Ctrl-C (``KeyboardInterrupt``) and a
parent closing the pipe mid-session: both return the served count
instead of raising, which lets the CLI context managers flush the
cache snapshot and finish the store run on the way out -- an
interrupted serve session exits 0 with its state intact.
"""

from __future__ import annotations

import json
from typing import IO, Optional

from repro.service.dispatcher import BatchDispatcher


def serve(input_stream: IO[str], output_stream: IO[str],
          dispatcher: Optional[BatchDispatcher] = None,
          parallel: Optional[bool] = None,
          max_line_bytes: Optional[int] = None) -> int:
    """Run the JSON-lines loop until EOF or a ``shutdown`` verb.

    Returns the number of successfully served requests (lines that
    answered without an ``error`` event), matching the pre-netserve
    contract.  ``max_line_bytes`` caps a single request line; ``None``
    keeps :data:`repro.netserve.protocol.DEFAULT_MAX_LINE_BYTES`.
    """
    # Imported lazily: netserve's dispatch core builds on the service
    # package, so a module-level import here would be circular.
    from repro.netserve.core import RequestHandler

    handler = RequestHandler(dispatcher, parallel=parallel,
                             max_line_bytes=max_line_bytes)
    served = 0
    try:
        for number, line in enumerate(input_stream, start=1):
            line = line.strip()
            if not line:
                continue
            failed = False
            for event in handler.handle_line(line, f"req-{number}"):
                if event.get("event") == "error":
                    failed = True
                json.dump(event, output_stream)
                output_stream.write("\n")
                output_stream.flush()
            if not failed:
                served += 1
            if handler.shutdown_requested:
                break
    except KeyboardInterrupt:
        # Ctrl-C is a drain request, not a crash: stop reading and let
        # the CLI's context managers flush cache + store normally.
        pass
    except BrokenPipeError:
        pass  # the parent went away; drain and flush as on EOF
    except ValueError as exc:
        # A parent that closes the pipe mid-session makes the next
        # iteration raise "I/O operation on closed file"; treat it
        # exactly like EOF.  Anything else is a real bug -- re-raise.
        if "closed file" not in str(exc):
            raise
    return served
