"""JSON-lines serve loop: one BatchRequest per line in, one line out.

``repro serve`` turns the dispatcher into a long-lived worker a parent
process can feed over a pipe:

.. code-block:: text

    $ printf '%s\n' '{"network": "alexnet-conv", "dataflows": ["RS"],
      "pe_counts": [256], "batch": 1}' | repro serve --cache-file c.pkl
    {"id": "req-1", "cells": [...], "cache": {...}, ...}

Each input line is parsed, validated and dispatched independently; a
bad line answers with an ``{"id": ..., "error": ...}`` object instead
of killing the loop, so one malformed request cannot take down a
service that other clients share.  Blank lines are ignored and EOF ends
the loop.

Requests carry an optional ``verb``: the default ``"batch"`` runs a
:class:`~repro.service.schema.BatchRequest` grid, ``"dse"`` runs a
hardware design-space exploration
(:class:`~repro.service.schema.DseRequest` -> Pareto front), and
``"query"`` reads recorded cells back out of the session's experiment
store (:class:`~repro.service.schema.QueryRequest`) -- all on the same
dispatcher session, so batch and DSE traffic share one cache and
queries see the store mid-recording.

A dse request with ``"stream": true`` answers with *multiple* lines:
one ``{"event": "candidate", ...}`` object per evaluated candidate as
it completes, an ``{"event": "progress", ...}`` introspection line
after every chunk (done/total/frontier/elapsed), and a final
``{"event": "result", ...}`` line identical in content to the
non-streamed answer -- a client can tail a million-candidate
exploration instead of waiting on it.
"""

from __future__ import annotations

import json
from typing import IO, Optional

from repro.service.dispatcher import BatchDispatcher
from repro.service.schema import BatchRequest, DseRequest, QueryRequest


def serve(input_stream: IO[str], output_stream: IO[str],
          dispatcher: Optional[BatchDispatcher] = None,
          parallel: Optional[bool] = None) -> int:
    """Run the JSON-lines loop until EOF; returns requests served."""
    dispatcher = dispatcher or BatchDispatcher()
    served = 0
    for number, line in enumerate(input_stream, start=1):
        line = line.strip()
        if not line:
            continue
        request_id = f"req-{number}"
        try:
            payload = json.loads(line)
            verb = (payload.get("verb", "batch")
                    if isinstance(payload, dict) else "batch")
            if verb == "dse":
                request = DseRequest.from_dict(payload,
                                               default_id=request_id)
                if request.stream:
                    # One line per event, flushed as it happens; the
                    # closing "result" line doubles as the response.
                    for event in dispatcher.stream_dse(request,
                                                       parallel=parallel):
                        if event.get("event") == "result":
                            response = event
                            break
                        json.dump(event, output_stream)
                        output_stream.write("\n")
                        output_stream.flush()
                    else:  # pragma: no cover - stream always ends in result
                        raise RuntimeError("dse stream ended without result")
                else:
                    response = dispatcher.run_dse(
                        request, parallel=parallel).to_dict()
            elif verb == "query":
                request = QueryRequest.from_dict(payload,
                                                 default_id=request_id)
                response = dispatcher.run_query(request).to_dict()
            elif verb == "batch":
                if isinstance(payload, dict):
                    payload = {key: value for key, value in payload.items()
                               if key != "verb"}
                request = BatchRequest.from_dict(payload,
                                                 default_id=request_id)
                response = dispatcher.run(
                    request, parallel=parallel).to_dict()
            else:
                raise ValueError(
                    f"unknown verb {verb!r}; known: batch, dse, query")
            served += 1
        except (ValueError, RuntimeError) as exc:
            response = {"id": request_id, "error": str(exc)}
        json.dump(response, output_stream)
        output_stream.write("\n")
        output_stream.flush()
    return served
