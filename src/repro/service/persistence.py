"""The disk tier of the evaluation cache.

``repro batch``/``repro serve`` keep their warm cache across process
restarts: :func:`persistent_cache` loads a snapshot on startup (merging
it into the live cache with :meth:`EvaluationCache.update`), yields the
cache to the caller, and flushes it back on exit.  The flush re-merges
whatever is on disk first, so two processes sharing one cache file
union their entries instead of clobbering each other (entries are pure
functions of their key, so a merge can never change a value).

The cache file defaults to the ``REPRO_CACHE`` environment variable;
when neither a path nor the variable is set the cache is purely
in-memory and nothing touches the disk.

The *queryable* persistence tier -- the SQLite experiment store that
``--store``/``--record`` sessions write -- lives in :mod:`repro.store`;
its ``REPRO_STORE`` fallback (:func:`default_store_path`,
:data:`STORE_ENV`) is re-exported here so the service layer has one
home for both environment conventions.
"""

from __future__ import annotations

import logging
import os
import time
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional

from repro import faults
from repro.engine.cache import (
    CacheFormatError,
    EvaluationCache,
    read_snapshot,
    write_snapshot,
)
from repro.store.db import (  # noqa: F401  (service-layer re-export)
    STORE_ENV,
    default_store_path,
)

#: Environment variable naming the default cache file.
CACHE_ENV = "REPRO_CACHE"

#: Write attempts a cache flush makes before giving up (the snapshot is
#: a cache -- losing one flush only costs warm-up time, never results).
FLUSH_ATTEMPTS = 2

logger = logging.getLogger("repro.service")


def quarantine(path: Path) -> Optional[Path]:
    """Move a corrupt snapshot aside as ``<name>.corrupt-<ts>``.

    Keeps the evidence for post-mortems while freeing the canonical
    name for the next clean flush.  Returns the quarantine path, or
    None when the move itself failed (in which case the corrupt file is
    simply left in place and the next flush overwrites it).
    """
    target = path.with_name(f"{path.name}.corrupt-{int(time.time())}")
    try:
        path.replace(target)
    except OSError:
        return None
    return target


def default_cache_path() -> Optional[Path]:
    """The cache file named by ``REPRO_CACHE`` (None when unset/empty)."""
    raw = os.environ.get(CACHE_ENV, "").strip()
    return Path(raw) if raw else None


def load_into(cache: EvaluationCache, path: Path) -> int:
    """Merge a snapshot file into a live cache; returns entries added.

    The merge goes straight from the validated snapshot into ``cache``,
    so only the live cache's own ``max_entries`` bound applies (no
    intermediate cache with a different bound dropping entries on the
    way).  A missing file is fine (first run); a corrupt one is
    *quarantined* (moved aside as ``<name>.corrupt-<ts>``, see
    :func:`quarantine`) and skipped with a warning instead of failing
    the startup -- a session with a store tier then rebuilds its warm
    set from the store, and a cache-only session simply starts cold.
    """
    if not path.exists():
        return 0
    try:
        entries = read_snapshot(path)
    except CacheFormatError as exc:
        moved = quarantine(path)
        logger.warning(
            "cache snapshot %s is corrupt (%s); quarantined to %s and "
            "starting cold", path, exc, moved or "<left in place>")
        return 0
    return cache.update_entries(entries)


def flush(cache: EvaluationCache, path: Path) -> None:
    """Union the live entries with the on-disk snapshot and write back.

    The live cache's entries always win recency: disk-only entries
    (written by another process since startup) are kept but rank as
    least-recently-used, so when the union exceeds the live bound it is
    the *stale* disk entries that are dropped, never this run's fresh
    results.  The live cache itself is not mutated.  A corrupt on-disk
    file cannot be merged and is overwritten (the snapshot is a cache;
    losing it only costs time).

    The write itself (temp + fsync + rename) is retried once with
    backoff on I/O failure and then *swallowed* with a warning -- a
    failed flush must never take down the run whose results it was
    merely memoizing.  Survived failures are counted in
    ``repro.faults`` stats (``flush_errors``).
    """
    live = cache.snapshot()  # LRU-first order
    try:
        disk = read_snapshot(path) if path.exists() else {}
    except CacheFormatError:
        disk = {}
    merged = OrderedDict(
        (key, value) for key, value in disk.items() if key not in live)
    merged.update(live)
    if cache.max_entries is not None:
        while len(merged) > cache.max_entries:
            merged.popitem(last=False)  # stale disk-only entries first
    for attempt in range(1, FLUSH_ATTEMPTS + 1):
        try:
            write_snapshot(path, merged)
            return
        except OSError as exc:
            faults.record("flush_errors")
            if attempt < FLUSH_ATTEMPTS:
                logger.warning(
                    "cache flush to %s failed (%s); retrying", path, exc)
                faults.sleep_backoff(attempt)
            else:
                logger.warning(
                    "cache flush to %s failed after %d attempt(s) (%s); "
                    "keeping the previous snapshot", path, attempt, exc)


@contextmanager
def persistent_cache(path: Optional[str | Path] = None,
                     max_entries: Optional[int] = None,
                     ) -> Iterator[EvaluationCache]:
    """An :class:`EvaluationCache` backed by a snapshot file.

    ``path=None`` falls back to ``REPRO_CACHE``; with neither set this
    is just a plain in-memory cache.  The snapshot is loaded (and
    validated) before the body runs and flushed when it exits, even on
    error -- partial warm-ups are still worth keeping.
    """
    cache = EvaluationCache(max_entries=max_entries)
    file_path = Path(path) if path is not None else default_cache_path()
    if file_path is not None:
        load_into(cache, file_path)
    try:
        yield cache
    finally:
        if file_path is not None:
            flush(cache, file_path)
