"""Grid expansion and aggregation: BatchRequest -> BatchResult.

The dispatcher is the service's wire adapter over the unified facade:
each :class:`~repro.service.schema.BatchRequest` is translated into a
:class:`repro.api.Scenario`, answered through a
:class:`repro.api.Session` (one deduplicated engine batch, so a grid of
G cells over L layers fans out as at most G x L layer evaluations,
minus everything the cache already covers), and the resulting
:class:`repro.api.ResultSet` rows are folded back into the service's
JSON schema.  Per-request cache traffic is measured as a stats delta
and reported in the :class:`BatchResult`.
"""

from __future__ import annotations

import time
from typing import List, Optional, Union

from repro.api import (
    EmptyScenarioError,
    Result,
    Scenario,
    ScenarioCell,
    Session,
    default_session,
)
from repro.dataflows.registry import equal_area_hardware  # noqa: F401  (re-export)
from repro.dse import EmptyDesignSpaceError
from repro.engine.core import EvaluationEngine
from repro.service.schema import (
    BatchRequest,
    BatchResult,
    CellResult,
    DseRequest,
    DseResult,
    QueryRequest,
    QueryResult,
)


def scenario_from_request(request: BatchRequest) -> Scenario:
    """The facade-level description of one request's grid."""
    workload = (request.layers if request.layers is not None
                else request.network)
    return Scenario(
        workload=workload,
        dataflows=request.dataflows,
        batches=(request.batch,),
        pe_counts=request.pe_counts,
        rf_choices=request.rf_choices,
        objective=request.objective,
    )


def expand_request(request: BatchRequest) -> List[ScenarioCell]:
    """Expand a request grid into resolved scenario cells.

    Hardware points whose RF demand exceeds the equal-area storage
    budget are skipped (they have no valid configuration, mirroring how
    the Fig. 15 sweep prunes its grid); a grid with *no* surviving
    point is an error.
    """
    try:
        return list(scenario_from_request(request).cells())
    except EmptyScenarioError as exc:
        raise ValueError(
            f"request {request.request_id!r} {exc}") from None


class BatchDispatcher:
    """Runs batch requests on a facade session."""

    def __init__(self, session: Optional[Union[Session, EvaluationEngine]]
                 = None) -> None:
        if session is None:
            session = default_session()
        elif isinstance(session, EvaluationEngine):
            # Compatibility: callers used to hand the dispatcher a bare
            # engine; wrap it (the session then doesn't own its pool).
            session = Session(engine=session)
        self.session = session

    @property
    def engine(self) -> EvaluationEngine:
        """The engine behind this dispatcher's session."""
        return self.session.engine

    def run(self, request: BatchRequest,
            parallel: Optional[bool] = None) -> BatchResult:
        """Expand, evaluate and aggregate one request."""
        start = time.perf_counter()
        before = self.session.cache.stats
        scenario = scenario_from_request(request)
        try:
            results = self.session.evaluate(scenario, parallel=parallel)
        except EmptyScenarioError as exc:
            raise ValueError(
                f"request {request.request_id!r} {exc}") from None
        return BatchResult(
            request_id=request.request_id,
            cells=tuple(self._cell_result(row) for row in results),
            layer_jobs=sum(len(row.evaluation.layers) for row in results),
            elapsed_s=time.perf_counter() - start,
            cache=self.session.cache.stats.since(before),
        )

    def stream_batch(self, request: BatchRequest,
                     parallel: Optional[bool] = None):
        """Serve one batch grid as a stream of wire events.

        The generator behind the service's ``evaluate`` verb: one
        ``{"event": "cell", ...}`` object per grid cell as it completes
        (completion order under a parallel session, grid order under a
        serial one), then a final ``{"event": "result", ...}`` object
        whose content -- cells back in grid order, layer-job count,
        cache delta -- is exactly what :meth:`run` would have answered
        for the same request.  Streaming changes the delivery, never
        the numbers.
        """
        start = time.perf_counter()
        before = self.session.cache.stats
        scenario = scenario_from_request(request)
        request_id = request.request_id
        rows: dict = {}
        try:
            for index, row in self.session.stream_indexed(
                    scenario, parallel=parallel):
                rows[index] = row
                yield {"id": request_id, "verb": "evaluate",
                       "event": "cell", "index": index,
                       **self._cell_result(row).to_dict()}
        except EmptyScenarioError as exc:
            raise ValueError(
                f"request {request_id!r} {exc}") from None
        ordered = [rows[index] for index in sorted(rows)]
        result = BatchResult(
            request_id=request_id,
            cells=tuple(self._cell_result(row) for row in ordered),
            layer_jobs=sum(len(row.evaluation.layers) for row in ordered),
            elapsed_s=time.perf_counter() - start,
            cache=self.session.cache.stats.since(before),
        )
        yield {"verb": "evaluate", "event": "result", **result.to_dict()}

    def run_many(self, requests: List[BatchRequest],
                 parallel: Optional[bool] = None) -> List[BatchResult]:
        """Run several requests; later ones reuse earlier ones' cache."""
        return [self.run(request, parallel=parallel)
                for request in requests]

    def run_dse(self, request: DseRequest,
                parallel: Optional[bool] = None) -> DseResult:
        """Serve one design-space exploration (the ``dse`` verb).

        The space is explored through the same session (and therefore
        the same cache tiers and pools) as the batch verb, so a DSE job
        re-visiting hardware points a batch grid already evaluated --
        or vice versa -- answers from the cache.
        """
        start = time.perf_counter()
        before = self.session.cache.stats
        try:
            pareto = self.session.explore(request.space, parallel=parallel,
                                          chunk=request.chunk)
        except EmptyDesignSpaceError as exc:
            raise ValueError(
                f"dse request {request.request_id!r} {exc}") from None
        return DseResult(
            request_id=request.request_id,
            pareto=pareto,
            elapsed_s=time.perf_counter() - start,
            include_dominated=request.include_dominated,
            cache=self.session.cache.stats.since(before),
        )

    def stream_dse(self, request: DseRequest,
                   parallel: Optional[bool] = None):
        """Serve one exploration as a stream of wire events.

        The generator behind ``{"verb": "dse", "stream": true}``: one
        ``{"event": "candidate", ...}`` object per evaluated candidate
        (in completion order), an ``{"event": "progress", ...}``
        introspection object after every chunk (done/total/frontier
        size/elapsed), and finally the same result object
        :meth:`run_dse` would have answered with, tagged
        ``"event": "result"``.  The frontier is bit-identical to the
        non-streamed verb -- only the delivery changes.
        """
        from repro.dse import explore_stream

        start = time.perf_counter()
        before = self.session.cache.stats
        request_id = request.request_id
        try:
            for kind, payload in explore_stream(
                    request.space, session=self.session, parallel=parallel,
                    chunk=request.chunk):
                if kind == "candidate":
                    yield {"id": request_id, "verb": "dse",
                           "event": "candidate", **payload.to_dict()}
                elif kind == "progress":
                    yield {"id": request_id, "verb": "dse",
                           "event": "progress", **payload}
                else:
                    result = DseResult(
                        request_id=request_id,
                        pareto=payload,
                        elapsed_s=time.perf_counter() - start,
                        include_dominated=request.include_dominated,
                        cache=self.session.cache.stats.since(before),
                    )
                    yield {"event": "result", **result.to_dict()}
        except EmptyDesignSpaceError as exc:
            raise ValueError(
                f"dse request {request_id!r} {exc}") from None

    def run_query(self, request: QueryRequest) -> QueryResult:
        """Serve one experiment-store query (the ``query`` verb).

        Reads the session's attached :class:`repro.store.db.ExperimentStore`
        through its own reader connection, so queries stay answerable
        while a recording sweep holds the writer -- the WAL multi-reader
        guarantee the service tier relies on.
        """
        start = time.perf_counter()
        store = getattr(self.session, "store", None)
        if store is None:
            raise ValueError(
                f"query request {request.request_id!r} needs an "
                f"experiment store; start the service with --store (or "
                f"set REPRO_STORE)")
        rows = store.query_cells(**request.filters)
        return QueryResult(
            request_id=request.request_id,
            rows=tuple(rows),
            elapsed_s=time.perf_counter() - start,
        )

    @staticmethod
    def _cell_result(row: Result) -> CellResult:
        if not row.feasible:
            return CellResult(
                dataflow=row.dataflow, num_pes=row.num_pes,
                rf_bytes_per_pe=row.rf_bytes_per_pe, batch=row.batch,
                objective=row.objective, feasible=False)
        return CellResult(
            dataflow=row.dataflow,
            num_pes=row.num_pes,
            rf_bytes_per_pe=row.rf_bytes_per_pe,
            batch=row.batch,
            objective=row.objective,
            feasible=True,
            energy_per_op=row.energy_per_op,
            delay_per_op=row.delay_per_op,
            edp_per_op=row.edp_per_op,
            dram_accesses_per_op=row.dram_accesses_per_op,
        )
