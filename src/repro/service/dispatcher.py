"""Grid expansion and aggregation: BatchRequest -> BatchResult.

The dispatcher is the service's execution core.  It expands each
:class:`~repro.service.schema.BatchRequest` into engine-level
:class:`~repro.engine.core.NetworkJob` cells -- one per (dataflow,
hardware point) -- and streams them through the shared
:class:`~repro.engine.core.EvaluationEngine` as a single deduplicated
batch, so a grid of G cells over L layers fans out as at most G x L
layer evaluations, minus everything the cache or intra-batch
deduplication already covers.  Per-request cache traffic is measured as
a stats delta and reported in the :class:`BatchResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dataflows.registry import DATAFLOWS, equal_area_hardware
from repro.energy.model import NetworkEvaluation
from repro.engine.core import EvaluationEngine, NetworkJob, default_engine
from repro.service.schema import BatchRequest, BatchResult, CellResult


@dataclass(frozen=True)
class _Cell:
    """One expanded (dataflow, hardware) point of a request grid."""

    dataflow: str
    num_pes: int
    rf_bytes_per_pe: int
    job: NetworkJob


def expand_request(request: BatchRequest) -> List[_Cell]:
    """Expand a request grid into per-cell engine jobs.

    Hardware points whose RF demand exceeds the equal-area storage
    budget are skipped (they have no valid configuration, mirroring how
    the Fig. 15 sweep prunes its grid).
    """
    layers = request.resolved_layers
    cells: List[_Cell] = []
    for name in request.dataflows:
        rf_options: Tuple[Optional[int], ...] = (
            request.rf_choices if request.rf_choices is not None
            else (None,))
        for num_pes in request.pe_counts:
            for rf in rf_options:
                try:
                    hardware = equal_area_hardware(name, num_pes, rf)
                except ValueError:
                    continue  # RF alone exceeds the storage budget
                cells.append(_Cell(
                    dataflow=name,
                    num_pes=num_pes,
                    rf_bytes_per_pe=hardware.rf_bytes_per_pe,
                    job=NetworkJob(DATAFLOWS[name], layers, hardware,
                                   request.objective),
                ))
    if not cells:
        raise ValueError(
            f"request {request.request_id!r} expands to no valid hardware "
            f"point (every (pes, rf) choice exceeds the area budget)")
    return cells


class BatchDispatcher:
    """Runs batch requests on an evaluation engine."""

    def __init__(self, engine: Optional[EvaluationEngine] = None) -> None:
        self.engine = engine if engine is not None else default_engine()

    def run(self, request: BatchRequest,
            parallel: Optional[bool] = None) -> BatchResult:
        """Expand, evaluate and aggregate one request."""
        start = time.perf_counter()
        before = self.engine.cache.stats
        cells = expand_request(request)
        evaluations = self.engine.evaluate_networks(
            [cell.job for cell in cells], parallel=parallel)
        results = tuple(
            self._cell_result(request, cell, evaluation)
            for cell, evaluation in zip(cells, evaluations))
        return BatchResult(
            request_id=request.request_id,
            cells=results,
            layer_jobs=sum(len(cell.job.layers) for cell in cells),
            elapsed_s=time.perf_counter() - start,
            cache=self.engine.cache.stats.since(before),
        )

    def run_many(self, requests: List[BatchRequest],
                 parallel: Optional[bool] = None) -> List[BatchResult]:
        """Run several requests; later ones reuse earlier ones' cache."""
        return [self.run(request, parallel=parallel)
                for request in requests]

    @staticmethod
    def _cell_result(request: BatchRequest, cell: _Cell,
                     evaluation: NetworkEvaluation) -> CellResult:
        if not evaluation.feasible:
            return CellResult(
                dataflow=cell.dataflow, num_pes=cell.num_pes,
                rf_bytes_per_pe=cell.rf_bytes_per_pe, batch=request.batch,
                objective=request.objective, feasible=False)
        return CellResult(
            dataflow=cell.dataflow,
            num_pes=cell.num_pes,
            rf_bytes_per_pe=cell.rf_bytes_per_pe,
            batch=request.batch,
            objective=request.objective,
            feasible=True,
            energy_per_op=evaluation.energy_per_op,
            delay_per_op=evaluation.delay_per_op,
            edp_per_op=evaluation.edp_per_op,
            dram_accesses_per_op=evaluation.dram_accesses_per_op,
        )
