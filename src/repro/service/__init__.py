"""Batch evaluation service: the scale tier over the engine.

``repro.service`` answers *grids* of evaluation problems instead of
single calls.  A :class:`~repro.service.schema.BatchRequest` names a
workload (a reference network or explicit layers), a set of dataflows,
a hardware grid and an objective; the
:class:`~repro.service.dispatcher.BatchDispatcher` expands it into
deduplicated engine jobs, fans them out through the shared
:class:`~repro.engine.core.EvaluationEngine`, and aggregates a
:class:`~repro.service.schema.BatchResult` with per-cell metrics and
the request's cache traffic.

The JSON-lines loop also speaks a ``dse`` verb: a
:class:`~repro.service.schema.DseRequest` runs a hardware design-space
exploration (:mod:`repro.dse`) on the same session and answers with a
:class:`~repro.service.schema.DseResult` carrying the Pareto front.

The ``query`` verb reads recorded cells back out of the session's
SQLite experiment store (:mod:`repro.store`): a
:class:`~repro.service.schema.QueryRequest` filters the ``cells``
table and answers with a :class:`~repro.service.schema.QueryResult`,
safely concurrent with a recording sweep thanks to the store's
WAL-mode single-writer / multi-reader discipline.

Persistence lives in :mod:`repro.service.persistence`
(:func:`persistent_cache` + the ``REPRO_CACHE`` variable, and the
``REPRO_STORE`` experiment-store fallback re-exported from
:mod:`repro.store.db`): the warm cache survives process restarts,
which is what makes repeated design-space retrospectives cheap.
:mod:`repro.service.server` is the stdin/stdout JSON-lines loop behind
``repro serve``.
"""

from repro.service.dispatcher import (
    BatchDispatcher,
    equal_area_hardware,
    expand_request,
)
from repro.service.persistence import (
    CACHE_ENV,
    STORE_ENV,
    default_cache_path,
    default_store_path,
    persistent_cache,
)
from repro.service.schema import (
    BatchRequest,
    BatchResult,
    CellResult,
    DseRequest,
    DseResult,
    QueryRequest,
    QueryResult,
    layer_from_dict,
    layer_to_dict,
    parse_requests,
)
from repro.service.server import serve

__all__ = [
    "BatchDispatcher",
    "BatchRequest",
    "BatchResult",
    "CACHE_ENV",
    "CellResult",
    "DseRequest",
    "DseResult",
    "QueryRequest",
    "QueryResult",
    "STORE_ENV",
    "default_cache_path",
    "default_store_path",
    "equal_area_hardware",
    "expand_request",
    "layer_from_dict",
    "layer_to_dict",
    "parse_requests",
    "persistent_cache",
    "serve",
]
