"""Batch evaluation service: the scale tier over the engine.

``repro.service`` answers *grids* of evaluation problems instead of
single calls.  A :class:`~repro.service.schema.BatchRequest` names a
workload (a reference network or explicit layers), a set of dataflows,
a hardware grid and an objective; the
:class:`~repro.service.dispatcher.BatchDispatcher` expands it into
deduplicated engine jobs, fans them out through the shared
:class:`~repro.engine.core.EvaluationEngine`, and aggregates a
:class:`~repro.service.schema.BatchResult` with per-cell metrics and
the request's cache traffic.

Persistence lives in :mod:`repro.service.persistence`
(:func:`persistent_cache` + the ``REPRO_CACHE`` variable): the warm
cache survives process restarts, which is what makes repeated
design-space retrospectives cheap.  :mod:`repro.service.server` is the
stdin/stdout JSON-lines loop behind ``repro serve``.
"""

from repro.service.dispatcher import (
    BatchDispatcher,
    equal_area_hardware,
    expand_request,
)
from repro.service.persistence import (
    CACHE_ENV,
    default_cache_path,
    persistent_cache,
)
from repro.service.schema import (
    NETWORKS,
    BatchRequest,
    BatchResult,
    CellResult,
    layer_from_dict,
    layer_to_dict,
    parse_requests,
)
from repro.service.server import serve

__all__ = [
    "BatchDispatcher",
    "BatchRequest",
    "BatchResult",
    "CACHE_ENV",
    "CellResult",
    "NETWORKS",
    "default_cache_path",
    "equal_area_hardware",
    "expand_request",
    "layer_from_dict",
    "layer_to_dict",
    "parse_requests",
    "persistent_cache",
    "serve",
]
