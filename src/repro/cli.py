"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the library's main entry points:

* ``compare``  -- the six-dataflow comparison on AlexNet CONV or FC layers
  (the Fig. 11-14 quantities) for a chosen array size and batch.
* ``evaluate`` -- one dataflow on one AlexNet layer, printing the optimal
  mapping, its reuse splits, and the energy breakdown.
* ``simulate`` -- run the functional RS simulator on a small layer and
  verify it against the Eq. (1) reference.
* ``sweep``    -- the Fig. 15 fixed-area allocation sweep.
* ``storage``  -- the Fig. 7b equal-area storage allocation.
* ``dse``      -- hardware design-space exploration: sweep PE-array
  geometries x RF x buffer sizes and reduce to a Pareto front
  (energy x delay x area), optionally under the paper's equal-area
  normalization.
* ``batch``    -- run a JSON batch spec (grids of network x dataflow x
  hardware) through the evaluation service.
* ``serve``    -- long-lived JSON-lines service loop on stdin/stdout
  (``{"verb": "dse"}`` requests run design-space explorations,
  ``{"verb": "query"}`` reads the experiment store).
* ``query``    -- filter recorded cells out of the SQLite experiment
  store (``--json``/``--csv``), or list its runs with ``--runs``.
* ``diff``     -- cross-run regression report between two commits'
  recorded runs (exit 1 when any cell value changed).

All subcommands run through the unified facade (:mod:`repro.api`):
grids are described as :class:`~repro.api.Scenario` objects and every
engine, cache tier and worker pool is owned by a
:class:`~repro.api.Session` -- the CLI never wires those up itself.
Results are memoized across subcommand internals, and
``sweep``/``batch`` can fan their grids out over a worker pool
(``--workers`` or the ``REPRO_PARALLEL`` environment variable;
``--serial`` forces the sequential path).  ``batch`` and ``serve``
persist the cache across processes via ``--cache-file`` or the
``REPRO_CACHE`` environment variable, so a repeated grid is answered
from disk instead of re-running the mapping search.  The evaluating
subcommands also take ``--store``/``--record`` (or ``REPRO_STORE``):
the SQLite experiment store then backs the warm cache tier and, when
recording, keeps every evaluated cell queryable by ``repro query`` and
diffable by ``repro diff``.

Errors (unknown layer names, impossible sweep grids) exit with a clean
one-line message and a nonzero status instead of a traceback: 2 for bad
arguments, 1 for infeasible/empty results.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.experiments import fig7_storage_allocation
from repro.analysis.report import format_table
from repro.analysis.sweep import PE_COUNTS, fig15_area_allocation_sweep
from repro.api import (
    ENV_CACHE,
    ENV_STORE,
    Scenario,
    Session,
    default_session,
)
from repro.dse import DesignSpace
from repro.engine.core import default_engine
from repro.registry import get_design_space
from repro.arch.energy_costs import MemoryLevel
from repro.arch.hardware import HardwareConfig
from repro.dataflows.registry import DATAFLOWS
from repro.nn.layer import LayerShape, conv_layer
from repro.nn.networks import alexnet
from repro.nn.reference import conv_layer_reference, random_layer_tensors
from repro.service import (
    BatchDispatcher,
    BatchResult,
    parse_requests,
    serve,
)
from repro.sim import simulate_layer
from repro.store.db import ExperimentStore, default_store_path


def _int_list(text: str) -> Tuple[int, ...]:
    """Parse a comma-separated list of positive ints (argparse type)."""
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}") from None
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(
            f"expected positive integers, got {text!r}")
    return values


def _size_list(text: str) -> Tuple[int, ...]:
    """Parse a comma-separated list of sizes; 0 is legal (argparse type).

    Used for the ``dse`` storage axes, where 0 names a real operating
    point: the NLR dataflow has no RF at all, and a zero-byte buffer
    is a valid (if usually infeasible) design point.
    """
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}") from None
    if not values or any(v < 0 for v in values):
        raise argparse.ArgumentTypeError(
            f"expected non-negative integers, got {text!r}")
    return values


def _str_list(text: str) -> Tuple[str, ...]:
    """Parse a comma-separated list of names (argparse type)."""
    values = tuple(part.strip() for part in text.split(",") if part.strip())
    if not values:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated names, got {text!r}")
    return values


def _shape_list(text: str) -> Tuple[Tuple[int, int], ...]:
    """Parse HxW[,HxW...] PE-array geometries (argparse type)."""
    shapes = []
    for part in text.split(","):
        part = part.strip().lower()
        if not part:
            continue
        h, sep, w = part.partition("x")
        try:
            shape = (int(h), int(w)) if sep else ()
        except ValueError:
            shape = ()
        if len(shape) != 2 or any(v < 1 for v in shape):
            raise argparse.ArgumentTypeError(
                f"expected HxW geometries like 12x14, got {text!r}")
        shapes.append(shape)
    if not shapes:
        raise argparse.ArgumentTypeError(
            f"expected HxW geometries like 12x14, got {text!r}")
    return tuple(shapes)


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    """Experiment-store flags shared by the evaluating subcommands."""
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="SQLite experiment store backing the warm "
                             "cache tier (default: the REPRO_STORE "
                             "environment variable; unset = no store)")
    parser.add_argument("--record", nargs="?", const=True, default=False,
                        metavar="LABEL",
                        help="record every evaluated cell into the "
                             "experiment store under a provenance-stamped "
                             "run (optional run LABEL); requires --store "
                             "or REPRO_STORE")


def _add_service_arguments(parser: argparse.ArgumentParser,
                           workers: bool = False) -> None:
    """Cache/parallelism flags shared by ``batch`` and ``serve``."""
    parser.add_argument("--cache-file", default=None, metavar="PATH",
                        help="persist the evaluation cache to PATH "
                             "(default: the REPRO_CACHE environment "
                             "variable; unset = in-memory only)")
    parser.add_argument("--max-cache-entries", type=int, default=None,
                        metavar="N",
                        help="LRU bound of the cache (default: "
                             "REPRO_CACHE_MAX_ENTRIES or 65536)")
    _add_store_arguments(parser)
    if workers:
        parallelism = parser.add_mutually_exclusive_group()
        parallelism.add_argument("--workers", type=int, default=None,
                                 help="fan evaluations out over N worker "
                                      "processes")
        parallelism.add_argument("--serial", action="store_true",
                                 help="force the serial evaluation path")


def _store_options(args: argparse.Namespace) -> dict:
    """Session store/record keywords from a subcommand's flags.

    No ``--store`` flag falls back to the ``REPRO_STORE`` variable
    (:data:`~repro.api.ENV_STORE`); ``--record`` passes through as
    ``True`` or the run label.
    """
    return dict(
        store=args.store if args.store is not None else ENV_STORE,
        record=args.record)


def _service_session(args: argparse.Namespace) -> Session:
    """Build the facade session behind a service subcommand's flags.

    The session owns every tier the flags describe: the worker pool
    (--workers/--serial, else REPRO_PARALLEL), the bounded LRU
    (--max-cache-entries), the persistent disk tier (--cache-file, else
    REPRO_CACHE, flushed on close) and the experiment store
    (--store/--record, else REPRO_STORE).
    """
    options = dict(
        # No --cache-file flag falls back to the REPRO_CACHE variable.
        cache_file=(args.cache_file if args.cache_file is not None
                    else ENV_CACHE),
        max_cache_entries=args.max_cache_entries,
        **_store_options(args))
    if args.workers is not None:
        return Session(parallel=True, workers=args.workers, **options)
    if args.serial:
        return Session(parallel=False, **options)
    return Session(**options)


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser with every ``repro`` subcommand wired up."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Eyeriss (ISCA 2016) reproduction: row-stationary "
                    "dataflow and CNN dataflow energy analysis.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="six-dataflow comparison")
    compare.add_argument("--pes", type=int, default=256,
                         help="PE count (default 256)")
    compare.add_argument("--batch", type=int, default=16,
                         help="batch size N (default 16)")
    compare.add_argument("--layers", choices=("conv", "fc"), default="conv",
                         help="AlexNet CONV or FC layers (default conv)")

    evaluate = sub.add_parser("evaluate", help="one dataflow on one layer")
    evaluate.add_argument("dataflow", type=str.upper, choices=list(DATAFLOWS),
                          help="dataflow name (case-insensitive)")
    evaluate.add_argument("layer", help="AlexNet layer name, e.g. CONV2")
    evaluate.add_argument("--pes", type=int, default=256)
    evaluate.add_argument("--batch", type=int, default=16)

    simulate = sub.add_parser("simulate",
                              help="functional RS simulation vs Eq. (1)")
    simulate.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser("sweep", help="Fig. 15 area-allocation sweep")
    sweep.add_argument("--batch", type=int, default=16)
    sweep.add_argument("--pes", type=_int_list, default=PE_COUNTS,
                       metavar="N[,N...]",
                       help="comma-separated PE counts "
                            f"(default {','.join(map(str, PE_COUNTS))})")
    sweep.add_argument("--rf", type=_int_list, default=None,
                       metavar="B[,B...]",
                       help="comma-separated RF bytes/PE choices")
    parallelism = sweep.add_mutually_exclusive_group()
    parallelism.add_argument("--workers", type=int, default=None,
                             help="fan the sweep out over N worker "
                                  "processes")
    parallelism.add_argument("--serial", action="store_true",
                             help="force the serial evaluation path")
    _add_store_arguments(sweep)

    sub.add_parser("storage", help="Fig. 7b storage allocation")

    query = sub.add_parser(
        "query", help="query recorded cells out of the experiment store")
    query.add_argument("--store", default=None, metavar="PATH",
                       help="the experiment store to read (default: the "
                            "REPRO_STORE environment variable)")
    query.add_argument("--workload", "--network", dest="workload",
                       default=None, help="filter: workload name")
    query.add_argument("--dataflow", default=None,
                       help="filter: dataflow name")
    query.add_argument("--batch", type=int, default=None,
                       help="filter: batch size")
    query.add_argument("--pes", type=int, default=None,
                       help="filter: PE count")
    query.add_argument("--rf", type=int, default=None,
                       help="filter: RF bytes per PE")
    query.add_argument("--objective", default=None,
                       help="filter: mapping objective")
    query.add_argument("--kind", choices=("grid", "dse"), default=None,
                       help="filter: grid cells or DSE candidates")
    query.add_argument("--run", type=int, default=None, metavar="RUN_ID",
                       help="filter: one recorded run")
    query.add_argument("--commit", default=None, metavar="SHA",
                       help="filter: cells recorded at a commit (full SHA)")
    query.add_argument("--limit", type=int, default=None, metavar="N",
                       help="return at most N rows")
    query.add_argument("--runs", action="store_true",
                       help="list the recorded runs instead of cells")
    query.add_argument("--json", action="store_true",
                       help="emit the rows as JSON")
    query.add_argument("--csv", default=None, metavar="DIR",
                       help="also export the rows as CSV under DIR")

    diff = sub.add_parser(
        "diff", help="cross-run regression report between two commits")
    diff.add_argument("commit_a", help="git ref of the baseline run "
                                       "(e.g. HEAD~1, a SHA, a branch)")
    diff.add_argument("commit_b", help="git ref of the candidate run")
    diff.add_argument("--store", default=None, metavar="PATH",
                      help="the experiment store to read (default: the "
                           "REPRO_STORE environment variable)")
    diff.add_argument("--json", action="store_true",
                      help="emit the full report as JSON")

    dse = sub.add_parser(
        "dse", help="hardware design-space exploration -> Pareto front")
    dse.add_argument("--space", default=None, metavar="NAME",
                     help="a registered design space "
                          "(@register_design_space); conflicts with the "
                          "grid flags below")
    # Grid flags default to SUPPRESS so _dse_space can tell an explicit
    # flag from an omitted one: mixing any of them with --space is an
    # error (as on the service wire), never a silent ignore.
    grid = dict(default=argparse.SUPPRESS)
    dse.add_argument("--network", **grid,
                     help="registered workload (default alexnet-conv)")
    dse.add_argument("--dataflows", type=_str_list, metavar="DF[,DF...]",
                     **grid,
                     help="dataflows to sweep (default: all registered)")
    dse.add_argument("--batch", type=int, **grid,
                     help="batch size N (default 16)")
    dse.add_argument("--pes", type=_int_list, metavar="N[,N...]", **grid,
                     help="PE counts, most-square geometry "
                          "(default 64,128,256 when --shapes is unset)")
    dse.add_argument("--shapes", type=_shape_list, metavar="HxW[,HxW...]",
                     **grid,
                     help="explicit PE-array geometries, e.g. 12x14")
    dse.add_argument("--rf", type=_size_list, metavar="B[,B...]", **grid,
                     help="RF bytes/PE choices; 0 = no RF, the NLR "
                          "operating point (default 256,512)")
    dse.add_argument("--glb", type=_size_list, metavar="KB[,KB...]", **grid,
                     help="global-buffer sizes in kB (free mode only; "
                          "default: the #PE x 512 B baseline)")
    dse.add_argument("--equal-area", action="store_true", **grid,
                     help="derive each point's buffer from the Eq. (2) "
                          "equal-area budget (the paper's methodology)")
    dse.add_argument("--area-budget", type=float, metavar="AREA", **grid,
                     help="normalized storage-area budget (default: the "
                          "Eq. (2) baseline per PE count)")
    dse.add_argument("--objective", **grid,
                     help="mapping objective (default energy)")
    # Streaming/sampling flags are not part of the grid description --
    # they compose with --space (budgeted exploration of a registered
    # space) instead of conflicting with it.
    dse.add_argument("--sample", type=int, default=None, metavar="N",
                     help="evaluate only N seeded-sampled candidates "
                          "instead of the full space")
    dse.add_argument("--seed", type=int, default=None, metavar="N",
                     help="sampling seed (default 0); same seed, same "
                          "candidate set")
    dse.add_argument("--sampler", default=None,
                     choices=("random", "halton"),
                     help="sampling mode: seeded uniform or "
                          "low-discrepancy Halton (default random)")
    dse.add_argument("--chunk", type=int, default=None, metavar="N",
                     help="candidates per streamed engine batch "
                          "(default 256); bounds live memory")
    dse.add_argument("--resume", action="store_true",
                     help="resume an interrupted exploration from the "
                          "experiment store (needs --store/--record)")
    dse.add_argument("--progress", action="store_true",
                     help="print a progress line to stderr after every "
                          "chunk")
    dse.add_argument("--all", action="store_true",
                     help="include dominated candidates in --json output "
                          "and print them as a second table")
    dse.add_argument("--json", action="store_true",
                     help="emit the candidates as JSON rows")
    dse.add_argument("--csv", default=None, metavar="DIR",
                     help="also export every candidate as CSV under DIR")
    _add_service_arguments(dse, workers=True)

    batch = sub.add_parser(
        "batch", help="run a JSON batch spec through the service")
    batch.add_argument("spec",
                       help="path to a BatchRequest JSON file, or '-' to "
                            "read the spec from stdin")
    batch.add_argument("--json", action="store_true",
                       help="emit the full BatchResult(s) as JSON")
    _add_service_arguments(batch, workers=True)

    server = sub.add_parser(
        "serve", help="JSON-lines service loop: stdin/stdout by default, "
                      "or a concurrent TCP server with --tcp HOST:PORT")
    _add_service_arguments(server, workers=True)
    server.add_argument("--tcp", default=None, metavar="HOST:PORT",
                        help="listen on a TCP socket instead of "
                             "stdin/stdout (port 0 picks a free port, "
                             "announced as a 'listening' line on stdout)")
    server.add_argument("--serve-workers", type=int, default=4, metavar="N",
                        help="concurrent request threads of the TCP "
                             "server (default 4)")
    server.add_argument("--window", type=int, default=64, metavar="N",
                        help="admission window: queued-but-unstarted "
                             "requests beyond N answer a 'busy' event "
                             "(default 64)")
    server.add_argument("--max-line-bytes", type=int, default=None,
                        metavar="N",
                        help="cap on one request line in bytes "
                             "(default 1 MiB); over-limit lines answer "
                             "an error event")
    server.add_argument("--metrics-interval", type=float, default=0.0,
                        metavar="SECONDS",
                        help="log a metrics snapshot to stderr every "
                             "SECONDS while the TCP server runs "
                             "(default: off)")
    server.add_argument("--deadline-ms", type=float, default=0.0,
                        metavar="MS",
                        help="default per-request deadline of the TCP "
                             "server in milliseconds; an expired request "
                             "answers a terminal 'timeout' event.  A "
                             "request's own deadline_ms envelope field "
                             "overrides this (default: no deadline)")

    mapping = sub.add_parser(
        "mapping", help="visualize the RS mapping of a layer (Fig. 6)")
    mapping.add_argument("layer", help="AlexNet layer name, e.g. CONV3")
    mapping.add_argument("--pes", type=int, default=256)
    mapping.add_argument("--batch", type=int, default=1)
    return parser


# ----------------------------------------------------------------------


def cmd_compare(args: argparse.Namespace) -> int:
    """``repro compare``: six-dataflow table on AlexNet CONV/FC layers."""
    scenario = Scenario(workload=f"alexnet-{args.layers}",
                        batches=(args.batch,), pe_counts=(args.pes,))
    results = default_session().evaluate(scenario)
    rows = []
    rs_energy: Optional[float] = None
    for cell in results:
        if not cell.feasible:
            rows.append([cell.dataflow, "infeasible", "-", "-", "-"])
            continue
        if cell.dataflow == "RS":
            rs_energy = cell.energy_per_op
        rows.append([
            cell.dataflow, f"{cell.energy_per_op:.3f}",
            f"{cell.energy_per_op / rs_energy:.2f}x" if rs_energy else "-",
            f"{cell.dram_accesses_per_op:.5f}",
            f"{cell.edp_per_op:.5f}",
        ])
    print(format_table(
        ["dataflow", "energy/op", "vs RS", "DRAM/op", "EDP/op"], rows,
        title=f"AlexNet {args.layers.upper()} layers, {args.pes} PEs, "
              f"batch {args.batch}"))
    return 0


def _find_layer(name: str, batch: int) -> LayerShape:
    """Look up an AlexNet layer by name.

    An unknown name raises a ``ValueError`` naming the known layers
    (the same error style as ``get_dataflow``), which ``main`` turns
    into a clean one-line exit-code-2 failure.
    """
    for layer in alexnet(batch):
        if layer.name == name.upper():
            return layer
    names = ", ".join(l.name for l in alexnet())
    raise ValueError(f"unknown layer {name!r}; known: {names}")


def cmd_evaluate(args: argparse.Namespace) -> int:
    """``repro evaluate``: one dataflow on one layer, mapping + energy."""
    layer = _find_layer(args.layer, args.batch)
    scenario = Scenario(workload=(layer,), dataflows=(args.dataflow,),
                        batches=(args.batch,), pe_counts=(args.pes,))
    cell = scenario.cells()[0]
    result = default_session().evaluate(scenario).rows[0]
    if not result.feasible:
        print(f"{result.dataflow} has no feasible mapping for "
              f"{layer.describe()} on {cell.hardware.describe()}")
        return 1
    ev = result.evaluation.evaluations[0]
    print(layer.describe())
    print(cell.hardware.describe())
    print()
    print(ev.mapping.describe())
    level = ev.breakdown.by_level
    print(f"\nenergy/op: {ev.energy_per_op:.3f} normalized "
          f"(ALU {level.alu / level.total:.0%}, "
          f"DRAM {level.dram / level.total:.0%}, "
          f"buffer {level.buffer / level.total:.0%}, "
          f"array {level.array / level.total:.0%}, "
          f"RF {level.rf / level.total:.0%})")
    print(f"DRAM accesses/op: {ev.dram_accesses_per_op:.5f}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """``repro simulate``: functional RS run checked against Eq. (1)."""
    layer = conv_layer("demo", H=15, R=3, E=13, C=8, M=16, U=1, N=2)
    hw = HardwareConfig.eyeriss_chip()
    ifmap, weights, bias = random_layer_tensors(layer, seed=args.seed,
                                                integer=True)
    ofmap, report = simulate_layer(layer, hw, ifmap, weights, bias)
    reference = conv_layer_reference(ifmap, weights, bias, stride=layer.U)
    ok = np.array_equal(ofmap, reference)
    print(layer.describe())
    print(f"passes: {report.passes_executed}, MACs: {report.trace.macs:,}")
    for level in MemoryLevel.storage_levels():
        print(f"  {level.value:>7}: {report.trace.level_total(level):,} "
              f"word accesses")
    print(f"output matches Eq. (1) reference: {ok}")
    return 0 if ok else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep``: the Fig. 15 fixed-area allocation sweep."""
    kwargs = {}
    session = None
    if args.rf is not None:
        kwargs["rf_choices"] = args.rf
    if args.serial:
        kwargs["parallel"] = False
    store_options = _store_options(args)
    # Session(store=ENV_STORE) quietly degrades to storeless when
    # REPRO_STORE is unset, so this detects "a store is in play".
    uses_store = (args.store is not None or bool(args.record)
                  or default_store_path() is not None)
    if args.workers is not None:
        kwargs["parallel"] = True
        if uses_store:
            session = Session(parallel=True, workers=args.workers,
                              **store_options)
        else:
            # A pooled session sharing the process-wide cache, so
            # repeated sweeps in one process stay warm regardless of
            # worker count.
            session = Session(parallel=True, workers=args.workers,
                              cache=default_engine().cache)
    elif uses_store:
        session = Session(**store_options)
    if session is not None:
        kwargs["session"] = session
    try:
        points = fig15_area_allocation_sweep(args.pes, batch=args.batch,
                                             **kwargs)
    finally:
        if session is not None:
            session.close()
    if not points:
        print("no feasible sweep point for the requested grid "
              f"(PEs: {', '.join(map(str, args.pes))})", file=sys.stderr)
        return 1
    e_min = min(p.energy_per_op for p in points.values())
    rows = [[f"{pt.active_pes:.0f}/{pes}", f"{pt.rf_bytes_per_pe} B",
             f"{pt.buffer_kb:.0f} kB", f"{pt.storage_area_fraction:.0%}",
             f"{pt.energy_per_op / e_min:.3f}"]
            for pes, pt in sorted(points.items())]
    print(format_table(
        ["active/total PEs", "RF/PE", "buffer", "storage area",
         "norm energy/op"], rows,
        title="Fig. 15 sweep: fixed total area, AlexNet CONV"))
    return 0


def _open_cli_store(args: argparse.Namespace) -> ExperimentStore:
    """The experiment store a ``query``/``diff`` invocation reads."""
    path = args.store if args.store is not None else default_store_path()
    if path is None:
        raise ValueError(
            "no experiment store named; pass --store PATH or set the "
            "REPRO_STORE environment variable")
    path = Path(path)
    if not path.exists():
        raise ValueError(f"experiment store {path} does not exist; "
                         f"record one first (e.g. repro sweep --record "
                         f"--store {path})")
    return ExperimentStore(path)


def cmd_query(args: argparse.Namespace) -> int:
    """``repro query``: read recorded cells out of the experiment store."""
    with _open_cli_store(args) as store:
        if args.runs:
            records = [record.to_dict() for record in store.runs()]
            if args.json:
                print(json.dumps(records, indent=2))
            else:
                rows = [[str(r["run_id"]), r["commit"][:12],
                         r["label"] or "-", str(r["cells"]),
                         r["started_at"], r["finished_at"] or "open"]
                        for r in records]
                print(format_table(
                    ["run", "commit", "label", "cells", "started",
                     "finished"], rows,
                    title=f"{len(records)} recorded run(s)"))
            return 0
        cells = store.query_cells(
            workload=args.workload, dataflow=args.dataflow,
            batch=args.batch, num_pes=args.pes, rf_bytes_per_pe=args.rf,
            objective=args.objective, kind=args.kind, run_id=args.run,
            commit=args.commit, limit=args.limit)
    if args.csv:
        from repro.analysis.export import export_query

        written = export_query(Path(args.csv), cells)
        print(f"wrote {written}", file=sys.stderr)
    if args.json:
        print(json.dumps(cells, indent=2))
    elif cells:
        rows = []
        for cell in cells:
            metrics = ([f"{cell['energy_per_op']:.3f}",
                        f"{cell['edp_per_op']:.5f}",
                        f"{cell['dram_accesses_per_op']:.5f}"]
                       if cell["feasible"] else ["infeasible", "-", "-"])
            rows.append([str(cell["run_id"]), cell["kind"],
                         cell["workload"], cell["dataflow"],
                         str(cell["batch"]), str(cell["num_pes"]),
                         f"{cell['rf_bytes_per_pe']} B", *metrics])
        print(format_table(
            ["run", "kind", "workload", "dataflow", "batch", "PEs",
             "RF/PE", "energy/op", "EDP/op", "DRAM/op"], rows,
            title=f"{len(cells)} recorded cell(s)"))
    if not cells:
        print("no recorded cell matches the filters", file=sys.stderr)
        return 1
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    """``repro diff``: cross-run regression report between two commits.

    Exit status 0 when the matched cells agree bit-for-bit, 1 when any
    metric changed or coverage drifted (2 for a missing store/run).
    """
    with _open_cli_store(args) as store:
        report = store.diff_commits(args.commit_a, args.commit_b)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        a, b = report.run_a, report.run_b
        print(f"run {a.run_id} ({a.commit_sha[:12]}) vs "
              f"run {b.run_id} ({b.commit_sha[:12]}): "
              f"{report.matched} matched, {report.identical} identical, "
              f"{len(report.changed)} changed, "
              f"{len(report.only_a)}/{len(report.only_b)} unmatched")
        for delta in report.changed:
            cell = delta.identity
            where = (f"{cell['workload']}/{cell['dataflow']} "
                     f"batch {cell['batch']} {cell['num_pes']} PEs "
                     f"{cell['rf_bytes_per_pe']} B")
            for name, (old, new) in delta.metrics.items():
                print(f"  {where}: {name} {old} -> {new}")
        if report.clean:
            print("runs are bit-identical")
    return 0 if report.clean else 1


def cmd_storage(args: argparse.Namespace) -> int:
    """``repro storage``: the Fig. 7b equal-area storage allocation."""
    rows = [[r.dataflow, f"{r.rf_bytes_per_pe} B", f"{r.total_rf_kb:.0f} kB",
             f"{r.buffer_kb:.0f} kB", f"{r.total_kb:.0f} kB"]
            for r in fig7_storage_allocation(256).values()]
    print(format_table(
        ["dataflow", "RF/PE", "total RF", "buffer", "total"], rows,
        title="Fig. 7b: equal-area storage allocation (256 PEs)"))
    return 0


#: The ``repro dse`` grid-flag destinations (SUPPRESS defaults: present
#: on the namespace only when the user passed them).
_DSE_GRID_FLAGS = ("network", "dataflows", "batch", "pes", "shapes",
                   "rf", "glb", "equal_area", "area_budget", "objective")


def _dse_space(args: argparse.Namespace) -> DesignSpace:
    """Resolve the design space a ``repro dse`` invocation describes.

    ``--space NAME`` resolves through the design-space registry and
    takes the whole description from the registered builder; otherwise
    the grid flags are assembled into an ad-hoc :class:`DesignSpace`.
    Mixing ``--space`` with explicit grid flags is an error, mirroring
    the service wire's 'space xor inline fields' rule.  The sampling
    flags (``--sample``/``--seed``/``--sampler``) are *not* grid flags:
    they overlay either description, so a registered space can be
    explored under a budget.
    """
    given = [name for name in _DSE_GRID_FLAGS if hasattr(args, name)]
    sampling = {}
    if getattr(args, "sample", None) is not None:
        sampling["sample"] = args.sample
    if getattr(args, "seed", None) is not None:
        sampling["seed"] = args.seed
    if getattr(args, "sampler", None) is not None:
        sampling["sampler"] = args.sampler
    if args.space is not None:
        if given:
            flags = ", ".join("--" + name.replace("_", "-")
                              for name in given)
            raise ValueError(
                f"--space replaces the whole grid description; drop "
                f"{flags} (or drop --space)")
        try:
            space = get_design_space(args.space)
        except KeyError as exc:
            raise ValueError(str(exc.args[0])) from None
        return replace(space, **sampling) if sampling else space
    get = lambda name, default: getattr(args, name, default)  # noqa: E731
    shapes = get("shapes", None)
    pe_counts = get("pes", None)
    if pe_counts is None:
        pe_counts = () if shapes else (64, 128, 256)
    options = dict(
        workload=get("network", "alexnet-conv"),
        batch=get("batch", 16), pe_counts=pe_counts,
        rf_choices=get("rf", (256, 512)),
        objective=get("objective", "energy"),
        equal_area=get("equal_area", False),
        area_budget=get("area_budget", None))
    if get("dataflows", None):
        options["dataflows"] = args.dataflows
    if shapes:
        options["array_shapes"] = shapes
    glb = get("glb", None)
    if glb is not None:
        options["glb_choices"] = tuple(kb * 1024 for kb in glb)
    return DesignSpace(**options, **sampling)


def cmd_dse(args: argparse.Namespace) -> int:
    """``repro dse``: explore a hardware space, print the Pareto front."""
    space = _dse_space(args)
    progress = None
    if args.progress:
        def progress(info: dict) -> None:
            print(f"dse: {info['done']}/{info['total']} candidates, "
                  f"frontier {info['frontier']}, "
                  f"{info['elapsed_s']:.1f}s", file=sys.stderr)
    with _service_session(args) as session:
        before = session.cache_stats
        pareto = session.explore(space, chunk=args.chunk,
                                 resume=args.resume, progress=progress)
        stats = session.cache_stats.since(before)
    if args.csv:
        from repro.analysis.export import export_dse

        path = export_dse(Path(args.csv), pareto)
        print(f"wrote {path}", file=sys.stderr)
    if args.json:
        print(pareto.to_json(indent=2, include_dominated=args.all))
    else:
        print(pareto.to_table(
            title=f"Pareto front ({' x '.join(pareto.metrics)}): "
                  f"{len(pareto)} of {pareto.num_evaluated} candidates, "
                  f"{space.workload_name}, objective {space.objective}"))
        if args.all and pareto.dominated:
            print()
            print(pareto.to_table(title="dominated candidates",
                                  rows=pareto.dominated))
        print(f"cache: {stats.hits} hits / {stats.hits + stats.misses} "
              f"lookups ({stats.hit_rate:.0%})", file=sys.stderr)
    if not len(pareto):
        print("no feasible design point in the space", file=sys.stderr)
        return 1
    return 0


def _batch_result_table(result: BatchResult) -> str:
    """Aligned text table of one batch result's cells + cache stats."""
    rows = []
    for cell in result.cells:
        if cell.feasible:
            rows.append([cell.dataflow, str(cell.num_pes),
                         f"{cell.rf_bytes_per_pe} B", str(cell.batch),
                         f"{cell.energy_per_op:.3f}",
                         f"{cell.edp_per_op:.5f}",
                         f"{cell.dram_accesses_per_op:.5f}"])
        else:
            rows.append([cell.dataflow, str(cell.num_pes),
                         f"{cell.rf_bytes_per_pe} B", str(cell.batch),
                         "infeasible", "-", "-"])
    cache = result.cache
    return format_table(
        ["dataflow", "PEs", "RF/PE", "batch", "energy/op", "EDP/op",
         "DRAM/op"], rows,
        title=f"batch {result.request_id}: {len(result.cells)} cells, "
              f"{result.layer_jobs} layer jobs, cache hit rate "
              f"{cache.hit_rate:.0%} ({cache.hits}/"
              f"{cache.hits + cache.misses}), {result.elapsed_s:.2f}s")


def cmd_batch(args: argparse.Namespace) -> int:
    """``repro batch``: run a JSON spec through the batch service."""
    try:
        spec_text = (sys.stdin.read() if args.spec == "-"
                     else Path(args.spec).read_text())
    except OSError as exc:
        print(f"error: cannot read spec {args.spec!r}: {exc}",
              file=sys.stderr)
        return 2
    requests = parse_requests(json.loads(spec_text))
    with _service_session(args) as session:
        results = BatchDispatcher(session).run_many(requests)
    if args.json:
        payload = [result.to_dict() for result in results]
        json.dump(payload[0] if len(payload) == 1 else payload,
                  sys.stdout, indent=2)
        print()
    else:
        for result in results:
            print(_batch_result_table(result))
    if not any(result.feasible_cells for result in results):
        print("no feasible cell in any request", file=sys.stderr)
        return 1
    return 0


def _parse_tcp_endpoint(value: str) -> tuple:
    """Split a ``--tcp HOST:PORT`` value into its (host, port) pair."""
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"--tcp expects HOST:PORT (e.g. 127.0.0.1:7333), got {value!r}")
    try:
        port = int(port)
    except ValueError:
        raise ValueError(
            f"--tcp port must be an integer, got {port!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"--tcp port out of range: {port}")
    return host, port


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the long-lived JSON-lines service loop.

    Without ``--tcp`` this is the stdin/stdout pipe worker; with
    ``--tcp HOST:PORT`` it becomes the concurrent asyncio server
    (:mod:`repro.netserve`), multiplexing every connected client onto
    this one warm session.  Both modes run the same dispatch core, so
    a request behaves identically over either transport.  The session
    closes on the way out, which flushes the persistent cache tier and
    finishes the recorded store run -- including after a SIGTERM drain.
    """
    with _service_session(args) as session:
        if args.tcp is not None:
            from repro.netserve.protocol import DEFAULT_MAX_LINE_BYTES
            from repro.netserve.server import serve_tcp

            host, port = _parse_tcp_endpoint(args.tcp)

            def announce(event: dict) -> None:
                json.dump(event, sys.stdout)
                sys.stdout.write("\n")
                sys.stdout.flush()

            served = serve_tcp(
                BatchDispatcher(session), host=host, port=port,
                workers=args.serve_workers, window=args.window,
                max_line_bytes=(args.max_line_bytes
                                if args.max_line_bytes is not None
                                else DEFAULT_MAX_LINE_BYTES),
                metrics_interval=args.metrics_interval,
                deadline_ms=args.deadline_ms,
                ready=announce)
        else:
            served = serve(sys.stdin, sys.stdout,
                           BatchDispatcher(session),
                           max_line_bytes=args.max_line_bytes)
    print(f"served {served} request(s)", file=sys.stderr)
    return 0


def cmd_mapping(args: argparse.Namespace) -> int:
    """``repro mapping``: visualize a layer's RS mapping (Fig. 6)."""
    from repro.analysis.visualize import (
        render_array_occupancy,
        render_logical_set,
    )
    from repro.mapping.folding import plan_from_mapping_params
    from repro.mapping.logical import LogicalSet

    layer = _find_layer(args.layer, args.batch)
    scenario = Scenario(workload=(layer,), dataflows=("RS",),
                        batches=(args.batch,), pe_counts=(args.pes,))
    result = default_session().evaluate(scenario).rows[0]
    if not result.feasible:
        print("no feasible RS mapping")
        return 1
    ev = result.evaluation.evaluations[0]
    demo_set = LogicalSet(n=0, m=0, c=0, height=layer.R,
                          width=min(layer.E, 6), stride=layer.U)
    print(render_logical_set(demo_set))
    print()
    plan = plan_from_mapping_params(layer, scenario.cells()[0].hardware,
                                    ev.mapping.params)
    print(render_array_occupancy(plan))
    print()
    print(ev.mapping.describe())
    return 0


COMMANDS = {
    "compare": cmd_compare,
    "evaluate": cmd_evaluate,
    "simulate": cmd_simulate,
    "sweep": cmd_sweep,
    "storage": cmd_storage,
    "query": cmd_query,
    "diff": cmd_diff,
    "dse": cmd_dse,
    "batch": cmd_batch,
    "serve": cmd_serve,
    "mapping": cmd_mapping,
}


def main(argv: List[str] | None = None) -> int:
    """CLI entry point: dispatch a subcommand, map errors to exit 2."""
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except (ValueError, RuntimeError) as exc:
        # Library-level validation errors (impossible hardware, bad
        # REPRO_PARALLEL, infeasible aggregation) become clean CLI
        # failures; anything else is a bug and keeps its traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
